"""Simulated-annealing placement (VPR-style).

Places packed cells onto matching sites of a :class:`TileGrid`,
minimising total half-perimeter wirelength (HPWL).  The anneal follows
the classic VPR recipe: moves per temperature proportional to
``N**(4/3)`` — the super-linear scaling the paper identifies as the
reason monolithic FPGA compiles are slow — with an adaptive temperature
update driven by the acceptance rate and a shrinking displacement
window.

The placer reports a :class:`PlacerStats` with the number of move
evaluations performed; :mod:`repro.pnr.compile_model` converts that work
into modeled backend seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PnRError
from repro.fabric.device import Site, TileGrid
from repro.pnr.pack import PackedNetlist

#: Move-per-temperature multiplier (VPR uses 10; scaled for wall time).
MOVES_PER_TEMP_FACTOR = 2.0

#: Anneal exponent: moves per temperature ~ factor * N**EXPONENT.
MOVES_EXPONENT = 4.0 / 3.0

#: Temperature schedule bounds.
MIN_TEMPERATURES = 8
MAX_TEMPERATURES = 60


@dataclass
class PlacerStats:
    """Work and quality metrics from one placement run."""

    cells: int = 0
    sites: int = 0
    moves_evaluated: int = 0
    moves_accepted: int = 0
    temperatures: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


@dataclass
class Placement:
    """A legal placement: cell index -> site."""

    grid: TileGrid
    locations: List[Site]
    stats: PlacerStats
    netlist: PackedNetlist

    def location(self, cell_index: int) -> Site:
        return self.locations[cell_index]

    def hpwl(self) -> float:
        """Total half-perimeter wirelength of all nets."""
        total = 0.0
        for net in self.netlist.nets:
            xs = [self.locations[p].x for p in net.pins]
            ys = [self.locations[p].y for p in net.pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


def place(netlist: PackedNetlist, grid: TileGrid,
          seed: int = 1, effort: float = 1.0) -> Placement:
    """Anneal ``netlist`` onto ``grid``.

    Args:
        netlist: packed design.
        grid: target region (page grid or whole-device grid).
        seed: RNG seed (placements are reproducible).
        effort: scales moves per temperature; <1 for fast/dirty runs
            (used by unit tests), 1.0 for benchmark runs.

    Raises:
        PnRError: when some cell kind has more cells than sites.
    """
    annealer = _Annealer(netlist, grid, seed, effort)
    return annealer.run()


class _Annealer:
    def __init__(self, netlist: PackedNetlist, grid: TileGrid, seed: int,
                 effort: float):
        self.netlist = netlist
        self.grid = grid
        self.rng = random.Random(seed)
        self.effort = effort
        self.stats = PlacerStats(cells=netlist.size)
        # site pools by kind
        self.pools: Dict[str, List[Site]] = {
            kind: grid.sites_of_kind(kind)
            for kind in ("SLICE", "BRAM", "DSP", "IO")}
        self.stats.sites = sum(len(v) for v in self.pools.values())
        for kind in ("SLICE", "BRAM", "DSP", "IO"):
            need = netlist.count(kind)
            have = len(self.pools[kind])
            if need > have:
                raise PnRError(
                    f"{netlist.name}: {need} {kind} cells but only "
                    f"{have} sites in region")
        # nets touching each cell (indices into netlist.nets)
        self.cell_nets: List[List[int]] = [[] for _ in range(netlist.size)]
        for net_index, net in enumerate(netlist.nets):
            for pin in net.pins:
                self.cell_nets[pin].append(net_index)

    # -- cost bookkeeping ---------------------------------------------------

    def _net_hpwl(self, net_index: int) -> float:
        pins = self.netlist.nets[net_index].pins
        xs = [self.loc[p].x for p in pins]
        ys = [self.loc[p].y for p in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def _initial_placement(self) -> None:
        self.loc: List[Optional[Site]] = [None] * self.netlist.size
        self.occupant: Dict[Tuple[int, int], int] = {}
        cursor: Dict[str, int] = {k: 0 for k in self.pools}
        order: Dict[str, List[int]] = {k: [] for k in self.pools}
        for index, cell in enumerate(self.netlist.cells):
            order[cell.kind].append(index)
        for kind, indices in order.items():
            pool = list(self.pools[kind])
            self.rng.shuffle(pool)
            for index, site in zip(indices, pool):
                self.loc[index] = site
                self.occupant[(site.x, site.y)] = index

    # -- the anneal -------------------------------------------------------------

    def run(self) -> Placement:
        self._initial_placement()
        net_cost = [self._net_hpwl(i) for i in range(len(self.netlist.nets))]
        cost = sum(net_cost)
        self.stats.initial_cost = cost

        n = max(2, self.netlist.size)
        moves_per_temp = max(
            8, int(MOVES_PER_TEMP_FACTOR * self.effort
                   * n ** MOVES_EXPONENT))
        # Initial temperature: ~ std-dev of a quick random-move sample.
        temperature = max(1.0, cost / max(1, len(self.netlist.nets)) * 2)
        window = max(self.grid.width, self.grid.height)

        temperatures = 0
        while temperatures < MAX_TEMPERATURES:
            accepted = 0
            for _ in range(moves_per_temp):
                delta = self._try_move(net_cost, temperature, window)
                self.stats.moves_evaluated += 1
                if delta is not None:
                    cost += delta
                    accepted += 1
            self.stats.moves_accepted += accepted
            temperatures += 1
            rate = accepted / max(1, moves_per_temp)
            # VPR-style adaptive cooling.
            if rate > 0.96:
                temperature *= 0.5
            elif rate > 0.8:
                temperature *= 0.9
            elif rate > 0.15:
                temperature *= 0.95
            else:
                temperature *= 0.8
            window = max(2, int(window * (0.5 + rate)))
            if (temperatures >= MIN_TEMPERATURES
                    and rate < 0.02 and temperature < 0.005 * max(cost, 1)
                    / max(1, len(self.netlist.nets))):
                break
        self.stats.temperatures = temperatures
        self.stats.final_cost = cost
        return Placement(self.grid, list(self.loc), self.stats,
                         self.netlist)

    def _try_move(self, net_cost: List[float], temperature: float,
                  window: int) -> Optional[float]:
        """Propose one swap/displace; returns accepted delta or None."""
        cell = self.rng.randrange(self.netlist.size)
        kind = self.netlist.cells[cell].kind
        pool = self.pools[kind]
        if len(pool) < 2:
            return None
        source = self.loc[cell]
        for _ in range(4):   # find a target inside the window
            target = pool[self.rng.randrange(len(pool))]
            if (abs(target.x - source.x) <= window
                    and abs(target.y - source.y) <= window
                    and (target.x, target.y) != (source.x, source.y)):
                break
        else:
            return None
        other = self.occupant.get((target.x, target.y))

        affected = set(self.cell_nets[cell])
        if other is not None:
            affected |= set(self.cell_nets[other])
        before = sum(net_cost[i] for i in affected)

        # tentatively apply
        self.loc[cell] = target
        self.occupant[(target.x, target.y)] = cell
        if other is not None:
            self.loc[other] = source
            self.occupant[(source.x, source.y)] = other
        else:
            del self.occupant[(source.x, source.y)]

        after = {i: self._net_hpwl(i) for i in affected}
        delta = sum(after.values()) - before
        if delta <= 0 or self.rng.random() < math.exp(
                -delta / max(temperature, 1e-9)):
            for i, value in after.items():
                net_cost[i] = value
            return delta
        # revert
        self.loc[cell] = source
        self.occupant[(source.x, source.y)] = cell
        if other is not None:
            self.loc[other] = target
            self.occupant[(target.x, target.y)] = other
        else:
            del self.occupant[(target.x, target.y)]
        return None
