"""Simulated-annealing placement (VPR-style).

Places packed cells onto matching sites of a :class:`TileGrid`,
minimising total half-perimeter wirelength (HPWL).  The anneal follows
the classic VPR recipe: moves per temperature proportional to
``N**(4/3)`` — the super-linear scaling the paper identifies as the
reason monolithic FPGA compiles are slow — with an adaptive temperature
update driven by the acceptance rate and a shrinking displacement
window.

Two engines implement the anneal (see :mod:`repro.simengine`):

* ``scalar`` (:class:`_Annealer`) — the reference: every move
  tentatively applies the swap and recomputes the affected nets' HPWL
  over their pin lists.
* ``vector`` (:class:`_VectorAnnealer`) — delta-HPWL against per-net
  bounding-box arrays (numpy-initialised, incrementally maintained with
  extreme-multiplicity counters): a move is evaluated in O(1) per
  affected net with *no* tentative state mutation, and only accepted
  moves touch the arrays.  The RNG draw stream — one cell draw, up to
  four target draws, one acceptance draw for uphill moves — is
  consumed identically, so placements, costs and stats are
  bit-identical to the scalar engine (pinned by the equivalence tests).

The placer reports a :class:`PlacerStats` with the number of move
evaluations performed; :mod:`repro.pnr.compile_model` converts that work
into modeled backend seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PnRError
from repro.fabric.device import Site, TileGrid
from repro.pnr.pack import PackedNetlist
from repro.simengine import VECTOR, resolve_engine

#: Move-per-temperature multiplier (VPR uses 10; scaled for wall time).
MOVES_PER_TEMP_FACTOR = 2.0

#: Anneal exponent: moves per temperature ~ factor * N**EXPONENT.
MOVES_EXPONENT = 4.0 / 3.0

#: Temperature schedule bounds.
MIN_TEMPERATURES = 8
MAX_TEMPERATURES = 60


@dataclass
class PlacerStats:
    """Work and quality metrics from one placement run."""

    cells: int = 0
    sites: int = 0
    moves_evaluated: int = 0
    moves_accepted: int = 0
    temperatures: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


@dataclass
class Placement:
    """A legal placement: cell index -> site."""

    grid: TileGrid
    locations: List[Site]
    stats: PlacerStats
    netlist: PackedNetlist

    def location(self, cell_index: int) -> Site:
        return self.locations[cell_index]

    def hpwl(self) -> float:
        """Total half-perimeter wirelength of all nets."""
        total = 0.0
        for net in self.netlist.nets:
            xs = [self.locations[p].x for p in net.pins]
            ys = [self.locations[p].y for p in net.pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


def place(netlist: PackedNetlist, grid: TileGrid,
          seed: int = 1, effort: float = 1.0,
          engine: Optional[str] = None) -> Placement:
    """Anneal ``netlist`` onto ``grid``.

    Args:
        netlist: packed design.
        grid: target region (page grid or whole-device grid).
        seed: RNG seed (placements are reproducible).
        effort: scales moves per temperature; <1 for fast/dirty runs
            (used by unit tests), 1.0 for benchmark runs.
        engine: ``"scalar"`` | ``"vector"`` | None (ambient default);
            both produce bit-identical placements.

    Raises:
        PnRError: when some cell kind has more cells than sites.
    """
    cls = _VectorAnnealer if resolve_engine(engine) == VECTOR \
        else _Annealer
    annealer = cls(netlist, grid, seed, effort)
    return annealer.run()


class _Annealer:
    def __init__(self, netlist: PackedNetlist, grid: TileGrid, seed: int,
                 effort: float):
        self.netlist = netlist
        self.grid = grid
        self.rng = random.Random(seed)
        self.effort = effort
        self.stats = PlacerStats(cells=netlist.size)
        # site pools by kind
        self.pools: Dict[str, List[Site]] = {
            kind: grid.sites_of_kind(kind)
            for kind in ("SLICE", "BRAM", "DSP", "IO")}
        self.stats.sites = sum(len(v) for v in self.pools.values())
        for kind in ("SLICE", "BRAM", "DSP", "IO"):
            need = netlist.count(kind)
            have = len(self.pools[kind])
            if need > have:
                raise PnRError(
                    f"{netlist.name}: {need} {kind} cells but only "
                    f"{have} sites in region")
        # nets touching each cell (indices into netlist.nets), deduped —
        # the cost bookkeeping always treated these as sets.
        cell_nets: List[List[int]] = [[] for _ in range(netlist.size)]
        for net_index, net in enumerate(netlist.nets):
            for pin in net.pins:
                cell_nets[pin].append(net_index)
        self.cell_nets: List[List[int]] = [
            list(dict.fromkeys(nets)) for nets in cell_nets]
        # Hot-loop mirrors of the netlist/pool structures: pin tuples per
        # net, cell kinds, and per-kind site coordinate arrays, so a move
        # evaluation indexes flat int lists instead of walking Site
        # objects.  Coordinates are ints, so every cost below is an int
        # and summation order cannot perturb results.
        self.net_pins: List[Tuple[int, ...]] = [
            tuple(net.pins) for net in netlist.nets]
        self.cell_kinds: List[str] = [c.kind for c in netlist.cells]
        self.pool_x: Dict[str, List[int]] = {
            kind: [s.x for s in pool] for kind, pool in self.pools.items()}
        self.pool_y: Dict[str, List[int]] = {
            kind: [s.y for s in pool] for kind, pool in self.pools.items()}
        self.height = grid.height
        # randrange(n) for a positive int n is exactly
        # _randbelow_with_getrandbits(n): draw n.bit_length() bits,
        # rejecting draws >= n.  Inlining that loop with precomputed
        # bit lengths consumes the identical getrandbits sequence while
        # skipping two Python calls on ~1e6 draws per compile.
        self._size = netlist.size
        self._size_bits = netlist.size.bit_length()
        self._kind_pools: Dict[str, Tuple[List[int], List[int], int, int]] = {
            kind: (self.pool_x[kind], self.pool_y[kind],
                   len(pool), len(pool).bit_length())
            for kind, pool in self.pools.items()}

    # -- cost bookkeeping ---------------------------------------------------

    def _net_hpwl(self, net_index: int) -> int:
        pins = self.net_pins[net_index]
        loc_x, loc_y = self.loc_x, self.loc_y
        xs = [loc_x[p] for p in pins]
        ys = [loc_y[p] for p in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def _initial_placement(self) -> None:
        loc: List[Optional[Site]] = [None] * self.netlist.size
        order: Dict[str, List[int]] = {k: [] for k in self.pools}
        for index, cell in enumerate(self.netlist.cells):
            order[cell.kind].append(index)
        for kind, indices in order.items():
            pool = list(self.pools[kind])
            self.rng.shuffle(pool)
            for index, site in zip(indices, pool):
                loc[index] = site
        # Anneal state: flat coordinate arrays plus an occupancy map
        # keyed by the packed coordinate x*height + y (grid coordinates
        # are unique across kinds, as the (x, y)-keyed map before it
        # relied on too).
        self.loc_x = [site.x for site in loc]
        self.loc_y = [site.y for site in loc]
        height = self.height
        self.occupant: Dict[int, int] = {
            site.x * height + site.y: index
            for index, site in enumerate(loc)}

    # -- the anneal -------------------------------------------------------------

    def _init_cost(self) -> List[int]:
        """Per-net cost vector at the initial placement (engine hook)."""
        return [self._net_hpwl(i) for i in range(len(self.netlist.nets))]

    def run(self) -> Placement:
        self._initial_placement()
        net_cost = self._init_cost()
        cost = sum(net_cost)
        self.stats.initial_cost = cost

        n = max(2, self.netlist.size)
        moves_per_temp = max(
            8, int(MOVES_PER_TEMP_FACTOR * self.effort
                   * n ** MOVES_EXPONENT))
        # Initial temperature: ~ std-dev of a quick random-move sample.
        temperature = max(1.0, cost / max(1, len(self.netlist.nets)) * 2)
        window = max(self.grid.width, self.grid.height)

        temperatures = 0
        while temperatures < MAX_TEMPERATURES:
            accepted, cost = self._sweep(net_cost, temperature, window,
                                         moves_per_temp, cost)
            self.stats.moves_evaluated += moves_per_temp
            self.stats.moves_accepted += accepted
            temperatures += 1
            rate = accepted / max(1, moves_per_temp)
            # VPR-style adaptive cooling.
            if rate > 0.96:
                temperature *= 0.5
            elif rate > 0.8:
                temperature *= 0.9
            elif rate > 0.15:
                temperature *= 0.95
            else:
                temperature *= 0.8
            window = max(2, int(window * (0.5 + rate)))
            if (temperatures >= MIN_TEMPERATURES
                    and rate < 0.02 and temperature < 0.005 * max(cost, 1)
                    / max(1, len(self.netlist.nets))):
                break
        self.stats.temperatures = temperatures
        self.stats.final_cost = cost
        site_at: Dict[Tuple[int, int], Site] = {}
        for pool in self.pools.values():
            for site in pool:
                site_at[(site.x, site.y)] = site
        locations = [site_at[(x, y)]
                     for x, y in zip(self.loc_x, self.loc_y)]
        return Placement(self.grid, locations, self.stats, self.netlist)

    def _sweep(self, net_cost: List[int], temperature: float,
               window: int, moves: int, cost: int) -> Tuple[int, int]:
        """One temperature's worth of moves (engine hook).

        Returns ``(accepted, cost)`` after ``moves`` evaluations.
        """
        accepted = 0
        try_move = self._try_move
        for _ in range(moves):
            delta = try_move(net_cost, temperature, window)
            if delta is not None:
                cost += delta
                accepted += 1
        return accepted, cost

    def _try_move(self, net_cost: List[int], temperature: float,
                  window: int) -> Optional[int]:
        """Propose one swap/displace; returns accepted delta or None.

        This is the placer's innermost loop (hundreds of thousands of
        calls per compile), so the HPWL recomputation is inlined over
        the flat coordinate arrays.  The RNG draw sequence — one cell
        draw, up to four target draws, one acceptance draw for uphill
        moves — matches the original implementation exactly, as do the
        integer cost deltas, keeping placements reproducible across the
        rewrite (pinned by the P&R equivalence tests).
        """
        rng = self.rng
        getrandbits = rng.getrandbits
        size = self._size
        cell = getrandbits(self._size_bits)
        while cell >= size:
            cell = getrandbits(self._size_bits)
        pool_x, pool_y, n_pool, pool_bits = \
            self._kind_pools[self.cell_kinds[cell]]
        if n_pool < 2:
            return None
        loc_x, loc_y = self.loc_x, self.loc_y
        sx = loc_x[cell]
        sy = loc_y[cell]
        for _ in range(4):   # find a target inside the window
            j = getrandbits(pool_bits)
            while j >= n_pool:
                j = getrandbits(pool_bits)
            tx = pool_x[j]
            ty = pool_y[j]
            if (-window <= tx - sx <= window
                    and -window <= ty - sy <= window
                    and (tx != sx or ty != sy)):
                break
        else:
            return None
        height = self.height
        occupant = self.occupant
        skey = sx * height + sy
        tkey = tx * height + ty
        other = occupant.get(tkey)

        cell_nets = self.cell_nets
        if other is not None:
            merged = set(cell_nets[cell])
            merged.update(cell_nets[other])
            affected: List[int] = list(merged)
        else:
            affected = cell_nets[cell]
        before = 0
        for i in affected:
            before += net_cost[i]

        # tentatively apply
        loc_x[cell] = tx
        loc_y[cell] = ty
        occupant[tkey] = cell
        if other is not None:
            loc_x[other] = sx
            loc_y[other] = sy
            occupant[skey] = other
        else:
            del occupant[skey]

        net_pins = self.net_pins
        after: List[int] = []
        total_after = 0
        for i in affected:
            pins = net_pins[i]
            if len(pins) == 2:
                a, b = pins
                ax, bx = loc_x[a], loc_x[b]
                ay, by = loc_y[a], loc_y[b]
                value = ((ax - bx if ax >= bx else bx - ax)
                         + (ay - by if ay >= by else by - ay))
            else:
                xs = [loc_x[p] for p in pins]
                ys = [loc_y[p] for p in pins]
                value = (max(xs) - min(xs)) + (max(ys) - min(ys))
            after.append(value)
            total_after += value
        delta = total_after - before
        if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)):
            for i, value in zip(affected, after):
                net_cost[i] = value
            return delta
        # revert
        loc_x[cell] = sx
        loc_y[cell] = sy
        occupant[skey] = cell
        if other is not None:
            loc_x[other] = tx
            loc_y[other] = ty
            occupant[tkey] = other
        else:
            del occupant[tkey]
        return None


class _VectorAnnealer(_Annealer):
    """Bounding-box delta-HPWL engine (``sim_engine=vector``).

    Move evaluation never tentatively mutates the placement: the
    "after" cost of every affected net is computed directly, so
    rejected moves — the overwhelming majority at the productive low
    temperatures — do no apply/revert work at all.

    * 2-pin nets (the bulk of packed page netlists) evaluate by closed
      form against the fixed endpoint.
    * Larger nets evaluate against per-net bounding-box arrays with
      extreme-multiplicity counters, all numpy-initialised in one CSR
      pass: unless the moved cell held an extreme alone, the new box is
      the old box extended toward the target — O(1) regardless of pin
      count.  Only the rare unique-extreme removal rescans a pin list,
      and only accepted moves rebuild the affected boxes.

    The RNG draw stream is consumed exactly as the scalar engine does,
    so placements, costs and stats are bit-identical (pinned by the
    equivalence tests); the win grows with net size and design scale.
    """

    def _init_cost(self) -> List[int]:
        import numpy as np

        nets = self.net_pins
        n_nets = len(nets)
        # 2-pin fast path: endpoint pair (or None for larger nets).
        self._pair: List[Optional[Tuple[int, int]]] = [
            (pins[0], pins[1]) if len(pins) == 2 else None
            for pins in nets]
        # >=3-pin nets carry pin-multiplicity maps for the bbox rules.
        self._net_mult: List[Optional[Dict[int, int]]] = []
        for pins in nets:
            if len(pins) == 2:
                self._net_mult.append(None)
                continue
            mult: Dict[int, int] = {}
            for p in pins:
                mult[p] = mult.get(p, 0) + 1
            self._net_mult.append(mult)
        # Per-cell site-pool tuples: one list index instead of a kind
        # string lookup per move (draw-stream neutral).
        self._cell_pool = [self._kind_pools[k] for k in self.cell_kinds]
        # Flat occupancy array (packed key -> cell, -1 empty): the
        # anneal loop only ever probes single keys, so a list index
        # replaces the dict probe.  The inherited ``occupant`` dict is
        # not maintained past this point (nothing else reads it).
        occ = [-1] * (self.grid.width * self.grid.height)
        for key, c in self.occupant.items():
            occ[key] = c
        self._occ = occ
        # Displace fast-path structures: per cell, its 2-pin nets as
        # (net, fixed-endpoint) pairs — degenerate both-pins-on-cell
        # nets excluded, their span is identically 0 — and its >=3-pin
        # nets.  (Swaps still walk ``cell_nets`` of both cells.)
        self._pair_nets: List[List[Tuple[int, int]]] = [
            [] for _ in range(self._size)]
        self._big_nets: List[List[int]] = [[] for _ in range(self._size)]
        for c in range(self._size):
            for i in self.cell_nets[c]:
                pins = nets[i]
                if len(pins) == 2:
                    a, b = pins
                    if a != b:
                        self._pair_nets[c].append((i, b if a == c else a))
                else:
                    self._big_nets[c].append(i)
        if n_nets == 0:
            self._lo_x = self._hi_x = self._lo_y = self._hi_y = []
            self._n_lo_x = self._n_hi_x = []
            self._n_lo_y = self._n_hi_y = []
            return []
        sizes = np.array([len(pins) for pins in nets])
        starts = np.zeros(n_nets, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        pin_idx = np.concatenate([np.asarray(pins) for pins in nets])
        xs = np.asarray(self.loc_x)[pin_idx]
        ys = np.asarray(self.loc_y)[pin_idx]
        lo_x = np.minimum.reduceat(xs, starts)
        hi_x = np.maximum.reduceat(xs, starts)
        lo_y = np.minimum.reduceat(ys, starts)
        hi_y = np.maximum.reduceat(ys, starts)
        self._lo_x = lo_x.tolist()
        self._hi_x = hi_x.tolist()
        self._lo_y = lo_y.tolist()
        self._hi_y = hi_y.tolist()
        self._n_lo_x = np.add.reduceat(
            xs == np.repeat(lo_x, sizes), starts).tolist()
        self._n_hi_x = np.add.reduceat(
            xs == np.repeat(hi_x, sizes), starts).tolist()
        self._n_lo_y = np.add.reduceat(
            ys == np.repeat(lo_y, sizes), starts).tolist()
        self._n_hi_y = np.add.reduceat(
            ys == np.repeat(hi_y, sizes), starts).tolist()
        return ((hi_x - lo_x) + (hi_y - lo_y)).tolist()

    def _after_one(self, i: int, m: int, ax: int, ay: int,
                   bx: int, by: int) -> int:
        """HPWL of (>=3-pin) net ``i`` after ``m`` moves (a) -> (b).

        O(1) from the bounding box unless ``m``'s pins held an extreme
        alone, in which case that axis rescans the net's pin list.
        """
        cnt = self._net_mult[i][m]
        hi = self._hi_x[i]
        lo = self._lo_x[i]
        if (ax == hi and self._n_hi_x[i] == cnt) \
                or (ax == lo and self._n_lo_x[i] == cnt):
            span_x = self._scan_axis(i, m, bx, self.loc_x)
        else:
            span_x = (hi if bx <= hi else bx) - (lo if bx >= lo else bx)
        hi = self._hi_y[i]
        lo = self._lo_y[i]
        if (ay == hi and self._n_hi_y[i] == cnt) \
                or (ay == lo and self._n_lo_y[i] == cnt):
            span_y = self._scan_axis(i, m, by, self.loc_y)
        else:
            span_y = (hi if by <= hi else by) - (lo if by >= lo else by)
        return span_x + span_y

    def _scan_axis(self, i: int, m: int, b: int,
                   loc: List[int]) -> int:
        """Exact axis span of net ``i`` with cell ``m`` relocated to
        coordinate ``b`` (the rare unique-extreme-removal path)."""
        hi = lo = b
        for p in self.net_pins[i]:
            if p != m:
                v = loc[p]
                if v > hi:
                    hi = v
                elif v < lo:
                    lo = v
        return hi - lo

    def _refresh_net(self, i: int) -> None:
        """Rebuild net ``i``'s box and extreme counters from its pins
        (runs only on accepted moves; 2-pin nets carry no box)."""
        if self._pair[i] is not None:
            return
        pins = self.net_pins[i]
        loc_x, loc_y = self.loc_x, self.loc_y
        p0 = pins[0]
        hi_x = lo_x = loc_x[p0]
        hi_y = lo_y = loc_y[p0]
        n_hi_x = n_lo_x = n_hi_y = n_lo_y = 1
        for p in pins[1:]:
            x = loc_x[p]
            if x > hi_x:
                hi_x, n_hi_x = x, 1
            elif x == hi_x:
                n_hi_x += 1
            if x < lo_x:
                lo_x, n_lo_x = x, 1
            elif x == lo_x:
                n_lo_x += 1
            y = loc_y[p]
            if y > hi_y:
                hi_y, n_hi_y = y, 1
            elif y == hi_y:
                n_hi_y += 1
            if y < lo_y:
                lo_y, n_lo_y = y, 1
            elif y == lo_y:
                n_lo_y += 1
        self._hi_x[i], self._lo_x[i] = hi_x, lo_x
        self._hi_y[i], self._lo_y[i] = hi_y, lo_y
        self._n_hi_x[i], self._n_lo_x[i] = n_hi_x, n_lo_x
        self._n_hi_y[i], self._n_lo_y[i] = n_hi_y, n_lo_y

    def _sweep(self, net_cost: List[int], temperature: float,
               window: int, moves: int, cost: int) -> Tuple[int, int]:
        """One temperature of moves, fully inlined.

        Identical RNG consumption and integer deltas to the scalar
        :meth:`_Annealer._try_move` loop, restructured for speed: the
        evaluation pass computes only the cost delta (no tentative
        mutation, no per-net value list), and only *accepted* moves do a
        second pass that applies the move and rebuilds the affected
        nets' costs/boxes from the new coordinates.  Acceptance
        probabilities are memoised per temperature (deltas are small
        ints and the temperature is fixed for the whole sweep, so the
        cached float is exactly ``exp(-delta / max(T, 1e-9))``).
        """
        rng = self.rng
        getrandbits = rng.getrandbits
        random_ = rng.random
        exp = math.exp
        size = self._size
        size_bits = self._size_bits
        cell_pool = self._cell_pool
        loc_x, loc_y = self.loc_x, self.loc_y
        height = self.height
        cell_nets = self.cell_nets
        pair = self._pair
        net_mult = self._net_mult
        net_pins = self.net_pins
        occ = self._occ
        pair_nets = self._pair_nets
        big_nets = self._big_nets
        hi_x, lo_x = self._hi_x, self._lo_x
        hi_y, lo_y = self._hi_y, self._lo_y
        n_hi_x, n_lo_x = self._n_hi_x, self._n_lo_x
        n_hi_y, n_lo_y = self._n_hi_y, self._n_lo_y
        after_one = self._after_one
        refresh = self._refresh_net
        mt = max(temperature, 1e-9)
        accept_prob: Dict[int, float] = {}
        accepted = 0
        for _ in range(moves):
            cell = getrandbits(size_bits)
            while cell >= size:
                cell = getrandbits(size_bits)
            pool_x, pool_y, n_pool, pool_bits = cell_pool[cell]
            if n_pool < 2:
                continue
            sx = loc_x[cell]
            sy = loc_y[cell]
            for _t in range(4):   # find a target inside the window
                j = getrandbits(pool_bits)
                while j >= n_pool:
                    j = getrandbits(pool_bits)
                tx = pool_x[j]
                ty = pool_y[j]
                if (-window <= tx - sx <= window
                        and -window <= ty - sy <= window
                        and (tx != sx or ty != sy)):
                    break
            else:
                continue
            tkey = tx * height + ty
            other = occ[tkey]
            delta = 0
            if other < 0:
                for i, o in pair_nets[cell]:
                    ox = loc_x[o]
                    oy = loc_y[o]
                    delta += ((tx - ox if tx >= ox else ox - tx)
                              + (ty - oy if ty >= oy else oy - ty)
                              - net_cost[i])
                for i in big_nets[cell]:
                    # >=3-pin: O(1) box extension per axis unless the
                    # cell held that extreme alone (rescan).
                    cnt = net_mult[i][cell]
                    h = hi_x[i]
                    lo = lo_x[i]
                    if (sx == h and n_hi_x[i] == cnt) \
                            or (sx == lo and n_lo_x[i] == cnt):
                        vh = vl = tx
                        for p in net_pins[i]:
                            if p != cell:
                                v = loc_x[p]
                                if v > vh:
                                    vh = v
                                elif v < vl:
                                    vl = v
                        value = vh - vl
                    else:
                        value = ((h if tx <= h else tx)
                                 - (lo if tx >= lo else tx))
                    h = hi_y[i]
                    lo = lo_y[i]
                    if (sy == h and n_hi_y[i] == cnt) \
                            or (sy == lo and n_lo_y[i] == cnt):
                        vh = vl = ty
                        for p in net_pins[i]:
                            if p != cell:
                                v = loc_y[p]
                                if v > vh:
                                    vh = v
                                elif v < vl:
                                    vl = v
                        value += vh - vl
                    else:
                        value += ((h if ty <= h else ty)
                                  - (lo if ty >= lo else ty))
                    delta += value - net_cost[i]
            else:
                merged = set(cell_nets[cell])
                merged.update(cell_nets[other])
                affected = list(merged)
                for i in affected:
                    pr = pair[i]
                    if pr is not None:
                        a, b = pr
                        a_moved = a == cell or a == other
                        b_moved = b == cell or b == other
                        if a_moved and b_moved:
                            # Swap inside one net: the coordinate
                            # support set {source, target} survives,
                            # so the span cannot change.
                            continue
                        m, o = (a, b) if a_moved else (b, a)
                        nx, ny = (tx, ty) if m == cell else (sx, sy)
                        ox = loc_x[o]
                        oy = loc_y[o]
                        delta += ((nx - ox if nx >= ox else ox - nx)
                                  + (ny - oy if ny >= oy else oy - ny)
                                  - net_cost[i])
                    else:
                        mult = net_mult[i]
                        if cell in mult:
                            if other in mult:
                                continue   # span preserved (see above)
                            value = after_one(i, cell, sx, sy, tx, ty)
                        else:
                            value = after_one(i, other, tx, ty, sx, sy)
                        delta += value - net_cost[i]

            if delta > 0:
                p = accept_prob.get(delta)
                if p is None:
                    p = exp(-delta / mt)
                    accept_prob[delta] = p
                if not random_() < p:
                    continue
            # -- accepted: apply, then rebuild affected nets from the
            # new coordinates (exact ints, so the rebuilt values agree
            # with the evaluated delta).
            cost += delta
            accepted += 1
            loc_x[cell] = tx
            loc_y[cell] = ty
            occ[tkey] = cell
            skey = sx * height + sy
            if other >= 0:
                loc_x[other] = sx
                loc_y[other] = sy
                occ[skey] = other
                for i in affected:
                    pr = pair[i]
                    if pr is not None:
                        a, b = pr
                        ax, bx = loc_x[a], loc_x[b]
                        ay, by = loc_y[a], loc_y[b]
                        net_cost[i] = ((ax - bx if ax >= bx else bx - ax)
                                       + (ay - by if ay >= by else by - ay))
                    else:
                        refresh(i)
                        net_cost[i] = ((hi_x[i] - lo_x[i])
                                       + (hi_y[i] - lo_y[i]))
            else:
                occ[skey] = -1
                for i, o in pair_nets[cell]:
                    ox = loc_x[o]
                    oy = loc_y[o]
                    net_cost[i] = ((tx - ox if tx >= ox else ox - tx)
                                   + (ty - oy if ty >= oy else oy - ty))
                for i in big_nets[cell]:
                    refresh(i)
                    net_cost[i] = ((hi_x[i] - lo_x[i])
                                   + (hi_y[i] - lo_y[i]))
        return accepted, cost
