"""Simulated-annealing placement (VPR-style).

Places packed cells onto matching sites of a :class:`TileGrid`,
minimising total half-perimeter wirelength (HPWL).  The anneal follows
the classic VPR recipe: moves per temperature proportional to
``N**(4/3)`` — the super-linear scaling the paper identifies as the
reason monolithic FPGA compiles are slow — with an adaptive temperature
update driven by the acceptance rate and a shrinking displacement
window.

The placer reports a :class:`PlacerStats` with the number of move
evaluations performed; :mod:`repro.pnr.compile_model` converts that work
into modeled backend seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PnRError
from repro.fabric.device import Site, TileGrid
from repro.pnr.pack import PackedNetlist

#: Move-per-temperature multiplier (VPR uses 10; scaled for wall time).
MOVES_PER_TEMP_FACTOR = 2.0

#: Anneal exponent: moves per temperature ~ factor * N**EXPONENT.
MOVES_EXPONENT = 4.0 / 3.0

#: Temperature schedule bounds.
MIN_TEMPERATURES = 8
MAX_TEMPERATURES = 60


@dataclass
class PlacerStats:
    """Work and quality metrics from one placement run."""

    cells: int = 0
    sites: int = 0
    moves_evaluated: int = 0
    moves_accepted: int = 0
    temperatures: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


@dataclass
class Placement:
    """A legal placement: cell index -> site."""

    grid: TileGrid
    locations: List[Site]
    stats: PlacerStats
    netlist: PackedNetlist

    def location(self, cell_index: int) -> Site:
        return self.locations[cell_index]

    def hpwl(self) -> float:
        """Total half-perimeter wirelength of all nets."""
        total = 0.0
        for net in self.netlist.nets:
            xs = [self.locations[p].x for p in net.pins]
            ys = [self.locations[p].y for p in net.pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


def place(netlist: PackedNetlist, grid: TileGrid,
          seed: int = 1, effort: float = 1.0) -> Placement:
    """Anneal ``netlist`` onto ``grid``.

    Args:
        netlist: packed design.
        grid: target region (page grid or whole-device grid).
        seed: RNG seed (placements are reproducible).
        effort: scales moves per temperature; <1 for fast/dirty runs
            (used by unit tests), 1.0 for benchmark runs.

    Raises:
        PnRError: when some cell kind has more cells than sites.
    """
    annealer = _Annealer(netlist, grid, seed, effort)
    return annealer.run()


class _Annealer:
    def __init__(self, netlist: PackedNetlist, grid: TileGrid, seed: int,
                 effort: float):
        self.netlist = netlist
        self.grid = grid
        self.rng = random.Random(seed)
        self.effort = effort
        self.stats = PlacerStats(cells=netlist.size)
        # site pools by kind
        self.pools: Dict[str, List[Site]] = {
            kind: grid.sites_of_kind(kind)
            for kind in ("SLICE", "BRAM", "DSP", "IO")}
        self.stats.sites = sum(len(v) for v in self.pools.values())
        for kind in ("SLICE", "BRAM", "DSP", "IO"):
            need = netlist.count(kind)
            have = len(self.pools[kind])
            if need > have:
                raise PnRError(
                    f"{netlist.name}: {need} {kind} cells but only "
                    f"{have} sites in region")
        # nets touching each cell (indices into netlist.nets), deduped —
        # the cost bookkeeping always treated these as sets.
        cell_nets: List[List[int]] = [[] for _ in range(netlist.size)]
        for net_index, net in enumerate(netlist.nets):
            for pin in net.pins:
                cell_nets[pin].append(net_index)
        self.cell_nets: List[List[int]] = [
            list(dict.fromkeys(nets)) for nets in cell_nets]
        # Hot-loop mirrors of the netlist/pool structures: pin tuples per
        # net, cell kinds, and per-kind site coordinate arrays, so a move
        # evaluation indexes flat int lists instead of walking Site
        # objects.  Coordinates are ints, so every cost below is an int
        # and summation order cannot perturb results.
        self.net_pins: List[Tuple[int, ...]] = [
            tuple(net.pins) for net in netlist.nets]
        self.cell_kinds: List[str] = [c.kind for c in netlist.cells]
        self.pool_x: Dict[str, List[int]] = {
            kind: [s.x for s in pool] for kind, pool in self.pools.items()}
        self.pool_y: Dict[str, List[int]] = {
            kind: [s.y for s in pool] for kind, pool in self.pools.items()}
        self.height = grid.height
        # randrange(n) for a positive int n is exactly
        # _randbelow_with_getrandbits(n): draw n.bit_length() bits,
        # rejecting draws >= n.  Inlining that loop with precomputed
        # bit lengths consumes the identical getrandbits sequence while
        # skipping two Python calls on ~1e6 draws per compile.
        self._size = netlist.size
        self._size_bits = netlist.size.bit_length()
        self._kind_pools: Dict[str, Tuple[List[int], List[int], int, int]] = {
            kind: (self.pool_x[kind], self.pool_y[kind],
                   len(pool), len(pool).bit_length())
            for kind, pool in self.pools.items()}

    # -- cost bookkeeping ---------------------------------------------------

    def _net_hpwl(self, net_index: int) -> int:
        pins = self.net_pins[net_index]
        loc_x, loc_y = self.loc_x, self.loc_y
        xs = [loc_x[p] for p in pins]
        ys = [loc_y[p] for p in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def _initial_placement(self) -> None:
        loc: List[Optional[Site]] = [None] * self.netlist.size
        order: Dict[str, List[int]] = {k: [] for k in self.pools}
        for index, cell in enumerate(self.netlist.cells):
            order[cell.kind].append(index)
        for kind, indices in order.items():
            pool = list(self.pools[kind])
            self.rng.shuffle(pool)
            for index, site in zip(indices, pool):
                loc[index] = site
        # Anneal state: flat coordinate arrays plus an occupancy map
        # keyed by the packed coordinate x*height + y (grid coordinates
        # are unique across kinds, as the (x, y)-keyed map before it
        # relied on too).
        self.loc_x = [site.x for site in loc]
        self.loc_y = [site.y for site in loc]
        height = self.height
        self.occupant: Dict[int, int] = {
            site.x * height + site.y: index
            for index, site in enumerate(loc)}

    # -- the anneal -------------------------------------------------------------

    def run(self) -> Placement:
        self._initial_placement()
        net_cost = [self._net_hpwl(i) for i in range(len(self.netlist.nets))]
        cost = sum(net_cost)
        self.stats.initial_cost = cost

        n = max(2, self.netlist.size)
        moves_per_temp = max(
            8, int(MOVES_PER_TEMP_FACTOR * self.effort
                   * n ** MOVES_EXPONENT))
        # Initial temperature: ~ std-dev of a quick random-move sample.
        temperature = max(1.0, cost / max(1, len(self.netlist.nets)) * 2)
        window = max(self.grid.width, self.grid.height)

        temperatures = 0
        while temperatures < MAX_TEMPERATURES:
            accepted = 0
            try_move = self._try_move
            for _ in range(moves_per_temp):
                delta = try_move(net_cost, temperature, window)
                if delta is not None:
                    cost += delta
                    accepted += 1
            self.stats.moves_evaluated += moves_per_temp
            self.stats.moves_accepted += accepted
            temperatures += 1
            rate = accepted / max(1, moves_per_temp)
            # VPR-style adaptive cooling.
            if rate > 0.96:
                temperature *= 0.5
            elif rate > 0.8:
                temperature *= 0.9
            elif rate > 0.15:
                temperature *= 0.95
            else:
                temperature *= 0.8
            window = max(2, int(window * (0.5 + rate)))
            if (temperatures >= MIN_TEMPERATURES
                    and rate < 0.02 and temperature < 0.005 * max(cost, 1)
                    / max(1, len(self.netlist.nets))):
                break
        self.stats.temperatures = temperatures
        self.stats.final_cost = cost
        site_at: Dict[Tuple[int, int], Site] = {}
        for pool in self.pools.values():
            for site in pool:
                site_at[(site.x, site.y)] = site
        locations = [site_at[(x, y)]
                     for x, y in zip(self.loc_x, self.loc_y)]
        return Placement(self.grid, locations, self.stats, self.netlist)

    def _try_move(self, net_cost: List[int], temperature: float,
                  window: int) -> Optional[int]:
        """Propose one swap/displace; returns accepted delta or None.

        This is the placer's innermost loop (hundreds of thousands of
        calls per compile), so the HPWL recomputation is inlined over
        the flat coordinate arrays.  The RNG draw sequence — one cell
        draw, up to four target draws, one acceptance draw for uphill
        moves — matches the original implementation exactly, as do the
        integer cost deltas, keeping placements reproducible across the
        rewrite (pinned by the P&R equivalence tests).
        """
        rng = self.rng
        getrandbits = rng.getrandbits
        size = self._size
        cell = getrandbits(self._size_bits)
        while cell >= size:
            cell = getrandbits(self._size_bits)
        pool_x, pool_y, n_pool, pool_bits = \
            self._kind_pools[self.cell_kinds[cell]]
        if n_pool < 2:
            return None
        loc_x, loc_y = self.loc_x, self.loc_y
        sx = loc_x[cell]
        sy = loc_y[cell]
        for _ in range(4):   # find a target inside the window
            j = getrandbits(pool_bits)
            while j >= n_pool:
                j = getrandbits(pool_bits)
            tx = pool_x[j]
            ty = pool_y[j]
            if (-window <= tx - sx <= window
                    and -window <= ty - sy <= window
                    and (tx != sx or ty != sy)):
                break
        else:
            return None
        height = self.height
        occupant = self.occupant
        skey = sx * height + sy
        tkey = tx * height + ty
        other = occupant.get(tkey)

        cell_nets = self.cell_nets
        if other is not None:
            merged = set(cell_nets[cell])
            merged.update(cell_nets[other])
            affected: List[int] = list(merged)
        else:
            affected = cell_nets[cell]
        before = 0
        for i in affected:
            before += net_cost[i]

        # tentatively apply
        loc_x[cell] = tx
        loc_y[cell] = ty
        occupant[tkey] = cell
        if other is not None:
            loc_x[other] = sx
            loc_y[other] = sy
            occupant[skey] = other
        else:
            del occupant[skey]

        net_pins = self.net_pins
        after: List[int] = []
        total_after = 0
        for i in affected:
            pins = net_pins[i]
            if len(pins) == 2:
                a, b = pins
                ax, bx = loc_x[a], loc_x[b]
                ay, by = loc_y[a], loc_y[b]
                value = ((ax - bx if ax >= bx else bx - ax)
                         + (ay - by if ay >= by else by - ay))
            else:
                xs = [loc_x[p] for p in pins]
                ys = [loc_y[p] for p in pins]
                value = (max(xs) - min(xs)) + (max(ys) - min(ys))
            after.append(value)
            total_after += value
        delta = total_after - before
        if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)):
            for i, value in zip(affected, after):
                net_cost[i] = value
            return delta
        # revert
        loc_x[cell] = sx
        loc_y[cell] = sy
        occupant[skey] = cell
        if other is not None:
            loc_x[other] = tx
            loc_y[other] = ty
            occupant[tkey] = other
        else:
            del occupant[tkey]
        return None
