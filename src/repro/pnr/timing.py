"""Post-route static timing analysis.

Estimates the achievable clock of a placed-and-routed design: each net
contributes interconnect delay proportional to its routed length (or
HPWL when unrouted), plus an SLR-crossing penalty for nets spanning die
(Sec. 2.5) and a fixed logic+setup delay per stage.  The resulting Fmax
feeds the Tab. 3 performance rows — notably the monolithic designs whose
long cross-SLR wires drop them to 150–200 MHz while the decomposed -O3
designs with pipelined inter-operator FIFOs hold 300 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fabric.device import Device, XCU50
from repro.pnr.placer import Placement
from repro.pnr.router import RoutingResult

#: Interconnect delay per grid hop (ns).
DELAY_PER_HOP_NS = 0.045

#: Logic + setup + clock skew floor per register stage (ns).
STAGE_FLOOR_NS = 2.2

#: Extra delay when a net crosses between SLRs (ns).
SLR_CROSSING_NS = 1.5

#: Fabric clock ceiling (MHz).
FMAX_CEILING = 300.0


@dataclass(frozen=True)
class TimingReport:
    """Static timing summary for one implementation."""

    critical_path_ns: float
    fmax_mhz: float
    worst_net_hops: int
    slr_crossings: int

    def meets(self, target_mhz: float) -> bool:
        return self.fmax_mhz >= target_mhz


def analyze_timing(placement: Placement,
                   routing: Optional[RoutingResult] = None,
                   device: Device = XCU50,
                   spans_slrs: bool = False) -> TimingReport:
    """Compute the critical path and Fmax of an implementation.

    Args:
        placement: the placed design.
        routing: routed paths; when omitted, HPWL approximates length.
        device: provides the SLR-crossing penalty.
        spans_slrs: whether the region covers multiple SLRs (a page
            never does; a monolithic compile does).
    """
    worst_hops = 0
    crossings = 0
    height = placement.grid.height
    for net_index, net in enumerate(placement.netlist.nets):
        if routing is not None and net_index in routing.routes:
            hops = len(routing.routes[net_index])
        else:
            xs = [placement.locations[p].x for p in net.pins]
            ys = [placement.locations[p].y for p in net.pins]
            hops = (max(xs) - min(xs)) + (max(ys) - min(ys))
        crosses = False
        if spans_slrs and len(device.slrs) > 1:
            slrs = {device.slr_of_row(placement.locations[p].y, height)
                    for p in net.pins}
            crosses = len(slrs) > 1
        if crosses:
            crossings += 1
        effective = hops + (SLR_CROSSING_NS / DELAY_PER_HOP_NS
                            if crosses else 0)
        worst_hops = max(worst_hops, int(effective))

    critical = STAGE_FLOOR_NS + worst_hops * DELAY_PER_HOP_NS
    fmax = min(FMAX_CEILING, 1000.0 / critical)
    return TimingReport(critical_path_ns=round(critical, 3),
                        fmax_mhz=round(fmax, 1),
                        worst_net_hops=worst_hops,
                        slr_crossings=crossings)
