"""Calibrated compile-time model: algorithm work -> Vivado-scale seconds.

The reproduction actually *runs* packing, annealing placement and
PathFinder routing on every design, so the super-linear scaling of
Tab. 2 emerges from measured algorithmic work (move evaluations, node
expansions).  This module converts that work — plus design size for the
HLS/synthesis/bitgen stages that we model analytically — into seconds on
the paper's Google-Cloud Xeon nodes.  Constants were calibrated so the
six Rosetta benchmarks land in Tab. 2's ranges:

* Vitis/-O3 monolithic: ~4,000–6,600 s total, p&r roughly half;
* -O1 per-page compiles: ~300–600 s p&r, 600–1,200 s total;
* -O0 RISC-V compiles: ~1–4 s.

Absolute seconds are a model; the measured work ratios (page vs.
monolithic) are real and drive the relative speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fabric.device import TileGrid
from repro.hls.netlist import Netlist
from repro.pnr.pack import PackedNetlist, pack_netlist
from repro.pnr.placer import Placement, place
from repro.pnr.router import RoutingResult, route
from repro.pnr.timing import TimingReport, analyze_timing


@dataclass(frozen=True)
class StageTimes:
    """Modeled seconds per compile stage (one Tab. 2 row fragment)."""

    hls: float = 0.0
    syn: float = 0.0
    pnr: float = 0.0
    bit: float = 0.0

    @property
    def total(self) -> float:
        return self.hls + self.syn + self.pnr + self.bit

    def __add__(self, other: "StageTimes") -> "StageTimes":
        return StageTimes(self.hls + other.hls, self.syn + other.syn,
                          self.pnr + other.pnr, self.bit + other.bit)

    def merged_parallel(self, other: "StageTimes") -> "StageTimes":
        """Stage-wise max: jobs running concurrently."""
        return StageTimes(max(self.hls, other.hls),
                          max(self.syn, other.syn),
                          max(self.pnr, other.pnr),
                          max(self.bit, other.bit))

    def scaled(self, factor: float) -> "StageTimes":
        """All stages multiplied (e.g. a job retried ``factor`` times)."""
        return StageTimes(self.hls * factor, self.syn * factor,
                          self.pnr * factor, self.bit * factor)


@dataclass(frozen=True)
class CompileTimeModel:
    """Calibration constants for the backend-time conversion."""

    # HLS (C -> RTL): per-IR-instruction cost plus tool startup.
    hls_base_s: float = 8.0
    hls_per_instr_s: float = 0.35
    # Logic synthesis: startup (shell/netlist load) + per-LUT work.
    syn_base_s: float = 85.0
    syn_monolithic_base_s: float = 1_050.0
    syn_per_lut_s: float = 0.022
    # Place & route: startup + context load + measured work conversion.
    pnr_base_s: float = 190.0
    pnr_monolithic_base_s: float = 420.0
    pnr_per_context_lut_s: float = 2.0e-3
    pnr_per_move_s: float = 5.0e-4
    pnr_per_expansion_s: float = 2.0e-4
    # Bitstream generation: per covered LUT of fabric area.
    bit_base_s: float = 92.0
    bit_monolithic_base_s: float = 560.0
    bit_per_lut_s: float = 2.2e-3
    # RISC-V cross-compiler (-O0): per IR instruction.
    riscv_base_s: float = 0.6
    riscv_per_instr_s: float = 0.004
    # Thread-count scaling exponent (Amdahl-ish diminishing returns).
    thread_exponent: float = 0.35

    def _thread_factor(self, threads: int) -> float:
        return max(1, threads) ** self.thread_exponent

    # -- analytic stages ---------------------------------------------------

    def hls_seconds(self, ir_instructions: int, threads: int = 8) -> float:
        """C-to-RTL time for one operator (or one monolithic kernel)."""
        raw = self.hls_base_s + self.hls_per_instr_s * ir_instructions
        return raw / self._thread_factor(threads)

    def syn_seconds(self, luts: int, threads: int = 8,
                    monolithic: bool = False) -> float:
        base = self.syn_monolithic_base_s if monolithic else self.syn_base_s
        return base + self.syn_per_lut_s * luts / self._thread_factor(threads)

    def pnr_seconds(self, moves: int, expansions: int, context_luts: int,
                    threads: int = 8, monolithic: bool = False) -> float:
        base = (self.pnr_monolithic_base_s if monolithic
                else self.pnr_base_s)
        work = (self.pnr_per_move_s * moves
                + self.pnr_per_expansion_s * expansions)
        return (base + self.pnr_per_context_lut_s * context_luts
                + work / self._thread_factor(threads))

    def bit_seconds(self, covered_luts: int,
                    monolithic: bool = False) -> float:
        base = self.bit_monolithic_base_s if monolithic else self.bit_base_s
        return base + self.bit_per_lut_s * covered_luts * (
            0.1 if not monolithic else 0.25)

    def riscv_seconds(self, ir_instructions: int) -> float:
        """-O0 cross-compile time for one operator."""
        return self.riscv_base_s + self.riscv_per_instr_s * ir_instructions


#: Default calibration used by the flows and benchmarks.
DEFAULT_MODEL = CompileTimeModel()


@dataclass
class ImplementationResult:
    """Everything produced by one place-and-route run."""

    packed: PackedNetlist
    placement: Placement
    routing: RoutingResult
    timing: TimingReport
    pnr_seconds: float
    wall_seconds: float


def implement_design(netlist: Netlist, grid: TileGrid, *,
                     context_luts: int,
                     threads: int = 8,
                     monolithic: bool = False,
                     seed: int = 1,
                     effort: float = 1.0,
                     channel_capacity: int = 16,
                     route_iterations: int = 24,
                     model: CompileTimeModel = DEFAULT_MODEL,
                     spans_slrs: bool = False,
                     engine: Optional[str] = None) -> ImplementationResult:
    """Pack, place, route and time one design; model its backend cost.

    Args:
        netlist: synthesized design.
        grid: target region grid (page or device).
        context_luts: surrounding logic the backend must load (abstract
            shell boundary vs. full overlay vs. full device).
        threads: backend thread count (30 monolithic / 8 per page in
            the paper's cluster, Sec. 7.1).
        monolithic: use the monolithic-startup constants.
        seed: placement RNG seed.
        effort: annealing effort knob (tests use < 1).
        channel_capacity: routing wires per grid cell.
        model: calibration constants.
        spans_slrs: whether timing should look for SLR crossings.
        engine: simulation engine for the placer (``scalar``/``vector``,
            bit-identical results; ``None`` resolves ambient state).
            Passed explicitly so it survives into
            :class:`~repro.core.parallel.ParallelBuildEngine` workers.
    """
    import time

    start = time.perf_counter()
    packed = pack_netlist(netlist)
    placement = place(packed, grid, seed=seed, effort=effort,
                      engine=engine)
    routing = route(placement, channel_capacity=channel_capacity,
                    max_iterations=route_iterations)
    timing = analyze_timing(placement, routing, spans_slrs=spans_slrs)
    wall = time.perf_counter() - start

    # Normalise the measured annealing work to effort 1.0, so the
    # modeled backend seconds reflect the problem size, not the
    # wall-time knob a test or bench happened to use.
    normalised_moves = int(placement.stats.moves_evaluated
                           / max(effort, 1e-6))
    modeled = model.pnr_seconds(normalised_moves,
                                routing.node_expansions, context_luts,
                                threads=threads, monolithic=monolithic)
    return ImplementationResult(packed, placement, routing, timing,
                                pnr_seconds=modeled, wall_seconds=wall)
