"""Place-and-route engine (the Vivado implementation substitute).

The paper's compile-time argument rests on placement and routing being
NP-hard spatial problems attacked with super-linear heuristics
(Sec. 2.2), so mapping a small page is much cheaper than mapping the
whole device.  This package implements the classic versions of those
heuristics for real:

* :mod:`repro.pnr.pack` — connectivity-driven packing of slices into
  CLB clusters;
* :mod:`repro.pnr.placer` — VPR-style simulated-annealing placement
  (moves per temperature ~ N^(4/3): the super-linear term);
* :mod:`repro.pnr.router` — PathFinder negotiated-congestion routing on
  a grid routing-resource graph;
* :mod:`repro.pnr.timing` — post-route static timing / Fmax;
* :mod:`repro.pnr.compile_model` — converts measured algorithmic work
  into modeled Vivado-scale seconds, calibrated against Tab. 2.
"""

from repro.pnr.pack import PackedNetlist, pack_netlist
from repro.pnr.placer import Placement, PlacerStats, place
from repro.pnr.router import RoutingResult, route
from repro.pnr.timing import TimingReport, analyze_timing
from repro.pnr.compile_model import (
    CompileTimeModel,
    StageTimes,
    implement_design,
)

__all__ = [
    "PackedNetlist",
    "pack_netlist",
    "Placement",
    "PlacerStats",
    "place",
    "RoutingResult",
    "route",
    "TimingReport",
    "analyze_timing",
    "CompileTimeModel",
    "StageTimes",
    "implement_design",
]
