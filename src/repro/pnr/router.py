"""PathFinder negotiated-congestion routing.

Routes every net of a placement over a grid routing-resource graph: one
routing node per grid cell with a fixed wire capacity.  Each iteration
rips up and re-routes all nets with an A* maze search whose node costs
blend base cost, present congestion and accumulated history — the
PathFinder algorithm used by VPR and, in spirit, by every commercial
router.  Iterations continue until no node is over capacity.

The router reports node-expansion counts so
:mod:`repro.pnr.compile_model` can convert routing work into modeled
backend seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PnRError
from repro.pnr.placer import Placement

#: Wires available per grid cell.
DEFAULT_CHANNEL_CAPACITY = 16

#: Congestion pricing growth per iteration.
PRESENT_FACTOR_GROWTH = 1.6

#: History cost increment for over-used nodes.
HISTORY_INCREMENT = 0.4

#: Maximum rip-up/re-route iterations before giving up.
MAX_ITERATIONS = 24

#: Heuristic inflation (VPR's astar_fac): >1 trades wirelength for speed.
ASTAR_FACTOR = 1.25

#: Per-sink expansion budget multiplier (guards congestion blow-ups).
EXPANSION_BUDGET_FACTOR = 16

#: Per-iteration expansion budget, in expansions per net: once an
#: iteration has spent this much search on average, remaining nets take
#: congestion-blind L routes (history pricing recovers them next pass).
ITERATION_BUDGET_PER_NET = 150


@dataclass
class RoutingResult:
    """Outcome of routing one placed design."""

    success: bool
    iterations: int
    node_expansions: int
    total_wirelength: int
    overused_nodes: int
    routes: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    @property
    def congestion_free(self) -> bool:
        return self.success and self.overused_nodes == 0


def route(placement: Placement,
          channel_capacity: int = DEFAULT_CHANNEL_CAPACITY,
          max_iterations: int = MAX_ITERATIONS) -> RoutingResult:
    """Route all nets of ``placement`` with PathFinder."""
    router = _PathFinder(placement, channel_capacity, max_iterations)
    return router.run()


class _PathFinder:
    def __init__(self, placement: Placement, capacity: int,
                 max_iterations: int):
        if capacity < 1:
            raise PnRError("channel capacity must be >= 1")
        self.placement = placement
        self.grid = placement.grid
        self.capacity = capacity
        self.max_iterations = max_iterations
        self.width = self.grid.width
        self.height = self.grid.height
        size = self.width * self.height
        self.present = [0] * size          # current wires used per node
        self.history = [0.0] * size        # accumulated congestion cost
        self.expansions = 0
        # Static neighbour table for the maze search: node index ->
        # ((neighbour, neighbour_index, nx, ny), ...) in the fixed
        # east/west/north/south order, bounds pre-checked.  Heap entries
        # keep (x, y) tuple nodes so tie ordering is unchanged.
        width, height = self.width, self.height
        neighbours: List[Tuple[Tuple[Tuple[int, int], int, int, int], ...]] = []
        for x in range(width):
            for y in range(height):
                entries = []
                for nx, ny in ((x + 1, y), (x - 1, y),
                               (x, y + 1), (x, y - 1)):
                    if 0 <= nx < width and 0 <= ny < height:
                        entries.append(((nx, ny), nx * height + ny, nx, ny))
                neighbours.append(tuple(entries))
        self._neighbours = neighbours

    def _node(self, x: int, y: int) -> int:
        return x * self.height + y

    # -- single-net maze route ------------------------------------------------

    def _route_net(self, pins: List[Tuple[int, int]], present_factor: float
                   ) -> List[Tuple[int, int]]:
        """Route one multi-pin net as a Steiner-ish tree of A* paths."""
        tree = {pins[0]}
        path_nodes: List[Tuple[int, int]] = [pins[0]]
        for sink in pins[1:]:
            if sink in tree:
                continue
            found = self._astar(tree, sink, present_factor)
            for node in found:
                if node not in tree:
                    tree.add(node)
                    path_nodes.append(node)
        return path_nodes

    def _astar(self, sources, sink: Tuple[int, int],
               present_factor: float) -> List[Tuple[int, int]]:
        """Congestion-aware A* from any source-tree node to the sink.

        Ties break toward larger g (depth-first bias) so uniform-cost
        plateaus don't expand whole bounding boxes, and the heuristic is
        inflated by ``ASTAR_FACTOR`` as VPR does.  A per-search expansion
        budget bounds congestion blow-ups; when exhausted, the search
        falls back to a congestion-blind L-shaped route (PathFinder's
        history pricing still penalises it next iteration).
        """
        sx, sy = sink
        capacity = self.capacity
        present = self.present
        history = self.history
        height = self.height
        neighbours = self._neighbours
        push = heapq.heappush
        pop = heapq.heappop
        frontier: List[Tuple[float, float, Tuple[int, int],
                             Optional[Tuple[int, int]]]] = []
        # Visited map keyed by packed node index (a bijection with the
        # (x, y) tuples, so membership semantics are unchanged); heap
        # entries and the returned path keep the tuples.
        came: Dict[int, Optional[Tuple[int, int]]] = {}
        budget = EXPANSION_BUDGET_FACTOR * max(
            self.width + height,
            min(abs(n[0] - sx) + abs(n[1] - sy) for n in sources) + 8)
        for node in sources:
            estimate = (abs(node[0] - sx) + abs(node[1] - sy)) \
                * ASTAR_FACTOR
            push(frontier, (estimate, 0.0, node, None))
        spent = 0
        while frontier:
            entry = pop(frontier)
            node = entry[2]
            node_index = node[0] * height + node[1]
            if node_index in came:
                continue
            came[node_index] = entry[3]
            spent += 1
            if node == sink:
                self.expansions += spent
                path = []
                cursor: Optional[Tuple[int, int]] = node
                while cursor is not None and cursor not in sources:
                    path.append(cursor)
                    cursor = came[cursor[0] * height + cursor[1]]
                path.reverse()
                return path
            if spent > budget:
                self.expansions += spent
                return self._l_route(sources, sink)
            cost = -entry[1]
            for neighbour, index, nx, ny in neighbours[node_index]:
                if index in came:
                    continue
                congestion = present[index] + 1 - capacity
                if congestion < 0:
                    congestion = 0
                # Float grouping matters: node_cost is summed first,
                # then added to cost, exactly as before the rewrite.
                node_cost = (1.0
                             + present_factor * congestion
                             + history[index])
                ncost = cost + node_cost
                estimate = (abs(nx - sx) + abs(ny - sy)) * ASTAR_FACTOR
                push(frontier, (ncost + estimate, -ncost,
                                neighbour, node))
        self.expansions += spent
        raise PnRError(f"unroutable net to sink {sink}")

    def _blind_net(self, pins: List[Tuple[int, int]]
                   ) -> List[Tuple[int, int]]:
        """Route a whole net with congestion-blind L segments."""
        tree = {pins[0]}
        nodes: List[Tuple[int, int]] = [pins[0]]
        for sink in pins[1:]:
            if sink in tree:
                continue
            for node in self._l_route(tree, sink):
                if node not in tree:
                    tree.add(node)
                    nodes.append(node)
        return nodes

    def _l_route(self, sources, sink: Tuple[int, int]
                 ) -> List[Tuple[int, int]]:
        """Fallback: congestion-blind L route from the nearest tree node."""
        sx, sy = sink
        start = min(sources,
                    key=lambda n: abs(n[0] - sx) + abs(n[1] - sy))
        path: List[Tuple[int, int]] = []
        x, y = start
        while x != sx:
            x += 1 if sx > x else -1
            path.append((x, y))
        while y != sy:
            y += 1 if sy > y else -1
            path.append((x, y))
        return path

    # -- the negotiation loop -----------------------------------------------------

    def run(self) -> RoutingResult:
        nets = []
        for net in self.placement.netlist.nets:
            pins = [(self.placement.locations[p].x,
                     self.placement.locations[p].y) for p in net.pins]
            # Dedupe pins sharing a site (e.g. two pins on one cluster).
            unique = list(dict.fromkeys(pins))
            if len(unique) >= 2:
                nets.append(unique)

        routes: Dict[int, List[Tuple[int, int]]] = {}
        present_factor = 0.6
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            self.present = [0] * (self.width * self.height)
            routes = {}
            iteration_budget = ITERATION_BUDGET_PER_NET * max(1, len(nets))
            iteration_start = self.expansions
            for index, pins in enumerate(nets):
                if self.expansions - iteration_start > iteration_budget:
                    # Search budget exhausted: blind routes for the rest;
                    # their overuse is priced into the next iteration.
                    path = self._blind_net(pins)
                else:
                    path = self._route_net(pins, present_factor)
                routes[index] = path
                # Terminal nodes reach the net through dedicated pin
                # wires and do not consume channel capacity.
                terminals = set(pins)
                present = self.present
                height = self.height
                for node in path:
                    if node not in terminals:
                        present[node[0] * height + node[1]] += 1
            overused = [i for i, used in enumerate(self.present)
                        if used > self.capacity]
            if not overused:
                wirelength = sum(len(p) for p in routes.values())
                return RoutingResult(True, iteration, self.expansions,
                                     wirelength, 0, routes)
            for index in overused:
                self.history[index] += HISTORY_INCREMENT * (
                    self.present[index] - self.capacity)
            present_factor *= PRESENT_FACTOR_GROWTH
        wirelength = sum(len(p) for p in routes.values())
        overused_count = sum(1 for used in self.present
                             if used > self.capacity)
        return RoutingResult(False, iteration, self.expansions, wirelength,
                             overused_count, routes)
