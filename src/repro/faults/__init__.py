"""Fault injection and resilience testing for the PLD reproduction.

The paper's premise is that FPGA development should survive the messy
realities of incremental refinement; this package makes the
reproduction survive the messy realities of *deployment*.  A
:class:`FaultPlan` is a deterministic, seed-keyed description of the
faults one run experiences — failed or hung page-compile jobs, DFX
bitstream load/CRC failures, corrupted or dropped NoC flits, DMA
errors, spurious softcore traps — and each subsystem consults a
per-domain injector at its natural decision points:

* :meth:`FaultPlan.compile_faults` → ``CompileCluster.schedule``
  (retry with backoff, per-job timeouts, node retirement; -O1 degrades
  an operator to the preloaded -O0 softcore when retries exhaust);
* :meth:`FaultPlan.noc_faults` → ``NetworkSimulator`` (leaf CRC +
  sequence tracking + timeout-driven retransmission recover the loss);
* :meth:`FaultPlan.bitstream_faults` → ``AlveoU50`` (reload on CRC
  mismatch, bounded retries);
* :meth:`FaultPlan.dma_faults` → ``DMAEngine`` (bounded retries);
* :meth:`FaultPlan.softcore_faults` → ``PicoRV32`` (watchdog restart
  from the loaded image on injected traps);
* :meth:`FaultPlan.overload_faults` → the serve-daemon chaos tests
  (a deterministic submit flood that drives admission control past
  its watermarks; the service sheds, brownouts and recovers).

Every injected fault lands in :attr:`FaultPlan.log`;
:func:`repro.core.reports.format_failure_report` renders the log plus
the recovery actions a build took.
"""

from repro.faults.plan import (
    BitstreamFaultInjector,
    CompileFaultInjector,
    CrashPlan,
    DMAFaultInjector,
    FaultEvent,
    FaultPlan,
    InjectedCrash,
    NoCFaultInjector,
    OverloadFaultInjector,
    SoftcoreFaultInjector,
    TransportFaultInjector,
)

__all__ = [
    "CrashPlan",
    "InjectedCrash",
    "FaultPlan",
    "FaultEvent",
    "CompileFaultInjector",
    "NoCFaultInjector",
    "BitstreamFaultInjector",
    "DMAFaultInjector",
    "OverloadFaultInjector",
    "SoftcoreFaultInjector",
    "TransportFaultInjector",
]
