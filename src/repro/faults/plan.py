"""Deterministic, seed-driven fault injection (the ``repro.faults`` core).

Real deployments of the PLD flow fail in ways the fault-free models
never exercise: a Slurm page-compile job crashes or hangs, a DFX
partial-bitstream load comes back with a CRC mismatch, the deflection
NoC corrupts or drops a flit, a DMA burst errors out, a softcore takes a
spurious trap.  :class:`FaultPlan` describes *which* of those faults a
run should experience, and hands each subsystem a small injector object
it consults at its natural decision points.

Determinism is the whole point: every injection decision is a pure
function of ``(seed, domain, decision key)`` via a keyed BLAKE2b hash,
so the same plan replays the identical fault sequence on every run —
independent of dict ordering, ``PYTHONHASHSEED`` or call interleaving.
A retry naturally re-draws (the attempt number is part of the key), so
transient faults clear on retry while ``kill_jobs`` entries fail every
attempt, which is how tests pin down the paper's Fig. 10 scenario of
one operator's -O1 compile failing permanently.

Every injected fault is appended to :attr:`FaultPlan.log`, which
:func:`repro.core.reports.format_failure_report` renders.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union


class InjectedCrash(BaseException):
    """A :class:`CrashPlan` killed the process at a planned point.

    Deliberately a ``BaseException``: a crash is not an error the
    toolflow may handle — recovery code that catches ``Exception`` must
    not accidentally survive it, exactly like a real SIGKILL.  Only the
    crash-injection harness itself catches this.
    """


class CrashPlan:
    """Kills the process at build step *k* (the crash-safety harness).

    The build engine calls :meth:`maybe_crash` at three journaled
    points of every cache-miss step — ``begin`` (journal begin written,
    builder not yet run), ``mid`` (builder done, artefact not yet in
    the store) and ``end`` (artefact stored, journal end not yet
    written).  The plan counts miss-steps as they begin and fires at
    the configured ``(at_step, point)``, either by raising
    :class:`InjectedCrash` (in-process tests) or with a real
    ``SIGKILL`` (subprocess e2e tests) — so every window a real crash
    could land in is reachable deterministically.
    """

    POINTS = ("begin", "mid", "end")

    def __init__(self, at_step: int, point: str = "begin",
                 mode: str = "raise"):
        if at_step < 1:
            raise ValueError("at_step is 1-based and must be >= 1")
        if point not in self.POINTS:
            raise ValueError(f"point must be one of {self.POINTS}")
        if mode not in ("raise", "sigkill"):
            raise ValueError("mode must be 'raise' or 'sigkill'")
        self.at_step = at_step
        self.point = point
        self.mode = mode
        self.steps_started = 0
        self.fired = False

    def maybe_crash(self, point: str, step: str) -> None:
        """Called by the engine at each crash window of a miss step."""
        if self.fired:
            return
        if point == "begin":
            self.steps_started += 1
        if self.steps_started == self.at_step and point == self.point:
            self.fired = True
            if self.mode == "sigkill":
                import os
                import signal
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedCrash(
                f"injected crash at step #{self.at_step} "
                f"({step!r}, point={point})")

    def __repr__(self) -> str:
        return (f"CrashPlan(at_step={self.at_step}, "
                f"point={self.point!r}, mode={self.mode!r})")


def _draw(seed: int, *key) -> float:
    """Uniform [0, 1) draw, a pure function of (seed, key)."""
    text = repr((seed,) + key).encode()
    digest = hashlib.blake2b(text, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the plan's log."""

    domain: str          # "compile" | "noc" | "bitstream" | "dma" | "softcore"
    kind: str            # e.g. "job-fail", "corrupt", "crc-mismatch"
    target: str          # job name, image name, "leaf3:port1", ...
    detail: str = ""

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{self.domain}] {self.kind} @ {self.target}{tail}"


class FaultPlan:
    """A reproducible description of the faults one run experiences.

    Args:
        seed: the replay seed; two plans with equal seeds and rates
            inject identical fault sequences.
        kill_jobs: compile jobs (operator names) that fail on *every*
            attempt — the deterministic "this page compile is broken"
            scenario that exercises -O0 degradation.
        compile_fail_rate: probability a page-compile attempt crashes.
        compile_timeout_rate: probability a page-compile attempt hangs
            until the cluster's per-job timeout.
        node_fail_rate: probability the node running an attempt dies
            (the job retries elsewhere; the node is retired).
        bitstream_fail_rate: probability a configuration-port load
            fails outright.
        bitstream_crc_rate: probability a load completes but the
            readback CRC mismatches.
        noc_corrupt_rate: probability an injected flit's payload is
            corrupted in flight.
        noc_drop_rate: probability an injected flit is dropped.
        dma_fail_rate: probability a DMA transfer attempt errors.
        softcore_trap_rate: probability a softcore run takes one
            spurious (transient) trap.
        transport_drop_rate: probability a remote-store request is
            dropped on the floor (the client sees a deadline expiry).
        transport_delay_rate: probability a request is delayed by the
            injector's deterministic stall before being served.
        transport_corrupt_rate: probability a response frame arrives
            bit-flipped (the client sees a framing/integrity error).
        transport_half_close_rate: probability the peer half-closes
            mid-frame (the client sees a short read).
        kill_shards: shards that are *dead* — either an iterable of
            shard addresses (dead from the first request) or a mapping
            ``{shard: from_request_index}`` (the shard serves requests
            ``0..n-1`` then dies, modelling a SIGKILL mid-build).  A
            killed shard fails every request from its kill point on:
            unlike the rate faults it never heals on retry, which is
            what forces the client through breaker quarantine into
            degraded mode.
        overload_bursts: number of submit-flood bursts the overload
            injector generates (0 = overload domain off).
        overload_burst_size: requests per burst.
        overload_tenants: tenant names the flood draws from (defaults
            to ``("flood",)``).
        overload_deadline_fraction: probability a flood request is
            deadline-class; the rest split batch/interactive by a
            further draw.  Everything — tenant, class, cost — is a pure
            function of ``(seed, burst, index)``, so a chaos test's
            flood replays identically.
    """

    def __init__(self, seed: int, *,
                 kill_jobs: Iterable[str] = (),
                 compile_fail_rate: float = 0.0,
                 compile_timeout_rate: float = 0.0,
                 node_fail_rate: float = 0.0,
                 bitstream_fail_rate: float = 0.0,
                 bitstream_crc_rate: float = 0.0,
                 noc_corrupt_rate: float = 0.0,
                 noc_drop_rate: float = 0.0,
                 dma_fail_rate: float = 0.0,
                 softcore_trap_rate: float = 0.0,
                 transport_drop_rate: float = 0.0,
                 transport_delay_rate: float = 0.0,
                 transport_corrupt_rate: float = 0.0,
                 transport_half_close_rate: float = 0.0,
                 kill_shards: Union[Iterable[str],
                                    Mapping[str, int]] = (),
                 overload_bursts: int = 0,
                 overload_burst_size: int = 8,
                 overload_tenants: Iterable[str] = ("flood",),
                 overload_deadline_fraction: float = 0.0):
        rates = {
            "compile_fail_rate": compile_fail_rate,
            "compile_timeout_rate": compile_timeout_rate,
            "node_fail_rate": node_fail_rate,
            "bitstream_fail_rate": bitstream_fail_rate,
            "bitstream_crc_rate": bitstream_crc_rate,
            "noc_corrupt_rate": noc_corrupt_rate,
            "noc_drop_rate": noc_drop_rate,
            "dma_fail_rate": dma_fail_rate,
            "softcore_trap_rate": softcore_trap_rate,
            "transport_drop_rate": transport_drop_rate,
            "transport_delay_rate": transport_delay_rate,
            "transport_corrupt_rate": transport_corrupt_rate,
            "transport_half_close_rate": transport_half_close_rate,
        }
        for name, rate in rates.items():
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if not (0.0 <= overload_deadline_fraction <= 1.0):
            raise ValueError(
                f"overload_deadline_fraction must be in [0, 1], got "
                f"{overload_deadline_fraction}")
        if overload_bursts < 0 or overload_burst_size < 1:
            raise ValueError("overload_bursts must be >= 0 and "
                             "overload_burst_size >= 1")
        self.seed = int(seed)
        self.kill_jobs = frozenset(kill_jobs)
        self.compile_fail_rate = compile_fail_rate
        self.compile_timeout_rate = compile_timeout_rate
        self.node_fail_rate = node_fail_rate
        self.bitstream_fail_rate = bitstream_fail_rate
        self.bitstream_crc_rate = bitstream_crc_rate
        self.noc_corrupt_rate = noc_corrupt_rate
        self.noc_drop_rate = noc_drop_rate
        self.dma_fail_rate = dma_fail_rate
        self.softcore_trap_rate = softcore_trap_rate
        self.transport_drop_rate = transport_drop_rate
        self.transport_delay_rate = transport_delay_rate
        self.transport_corrupt_rate = transport_corrupt_rate
        self.transport_half_close_rate = transport_half_close_rate
        if isinstance(kill_shards, Mapping):
            self.kill_shards: Dict[str, int] = {
                str(shard): int(index)
                for shard, index in kill_shards.items()}
        else:
            self.kill_shards = {str(shard): 0 for shard in kill_shards}
        self.overload_bursts = int(overload_bursts)
        self.overload_burst_size = int(overload_burst_size)
        self.overload_tenants = tuple(overload_tenants) or ("flood",)
        self.overload_deadline_fraction = overload_deadline_fraction
        self.log: List[FaultEvent] = []

    def record(self, domain: str, kind: str, target: str,
               detail: str = "") -> FaultEvent:
        event = FaultEvent(domain, kind, target, detail)
        self.log.append(event)
        return event

    def events(self, domain: Optional[str] = None) -> List[FaultEvent]:
        if domain is None:
            return list(self.log)
        return [e for e in self.log if e.domain == domain]

    # -- per-domain injectors ---------------------------------------------

    def compile_faults(self) -> "CompileFaultInjector":
        return CompileFaultInjector(self)

    def noc_faults(self) -> "NoCFaultInjector":
        return NoCFaultInjector(self)

    def bitstream_faults(self) -> "BitstreamFaultInjector":
        return BitstreamFaultInjector(self)

    def dma_faults(self) -> "DMAFaultInjector":
        return DMAFaultInjector(self)

    def softcore_faults(self) -> "SoftcoreFaultInjector":
        return SoftcoreFaultInjector(self)

    def transport_faults(self) -> "TransportFaultInjector":
        return TransportFaultInjector(self)

    def overload_faults(self) -> "OverloadFaultInjector":
        return OverloadFaultInjector(self)

    @property
    def any_overload_faults(self) -> bool:
        return self.overload_bursts > 0

    @property
    def any_transport_faults(self) -> bool:
        return bool(self.kill_shards) or self.transport_drop_rate > 0 \
            or self.transport_delay_rate > 0 \
            or self.transport_corrupt_rate > 0 \
            or self.transport_half_close_rate > 0

    @property
    def any_compile_faults(self) -> bool:
        return bool(self.kill_jobs) or self.compile_fail_rate > 0 \
            or self.compile_timeout_rate > 0 or self.node_fail_rate > 0

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, "
                f"{len(self.log)} injected so far)")


class CompileFaultInjector:
    """Decides the outcome of each compile-job attempt."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def attempt_outcome(self, job: str, attempt: int
                        ) -> Tuple[str, float]:
        """Outcome of attempt ``attempt`` (1-based) of job ``job``.

        Returns ``(kind, work_fraction)`` where kind is one of ``"ok"``,
        ``"fail"`` (crash after ``work_fraction`` of the runtime),
        ``"timeout"`` (hung until the per-job timeout) or ``"node"``
        (the node died under the job).
        """
        plan = self.plan
        if job in plan.kill_jobs:
            plan.record("compile", "job-fail", job,
                        f"attempt {attempt} (killed by plan)")
            return "fail", _draw(plan.seed, "compile", "frac", job, attempt)
        roll = _draw(plan.seed, "compile", "outcome", job, attempt)
        edge = plan.compile_fail_rate
        if roll < edge:
            plan.record("compile", "job-fail", job, f"attempt {attempt}")
            return "fail", _draw(plan.seed, "compile", "frac", job, attempt)
        edge += plan.compile_timeout_rate
        if roll < edge:
            plan.record("compile", "job-timeout", job,
                        f"attempt {attempt}")
            return "timeout", 1.0
        edge += plan.node_fail_rate
        if roll < edge:
            plan.record("compile", "node-fail", job, f"attempt {attempt}")
            return "node", _draw(plan.seed, "compile", "frac", job, attempt)
        return "ok", 1.0


class NoCFaultInjector:
    """Decides the fate of each flit injected into the network.

    Decisions are keyed by a monotone injection index the simulator
    supplies, so a retransmitted flit (a new injection) re-draws and can
    get through where the original was lost.  Control (linking) packets
    are exempt: the pre-linker verifies its configuration by register
    readback before any data flows, so data/ack flits are where loss
    matters.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.corrupted = 0
        self.dropped = 0

    def on_injection(self, injection_index: int, target: str) -> str:
        """``"ok"`` | ``"corrupt"`` | ``"drop"`` for one injected flit."""
        plan = self.plan
        roll = _draw(plan.seed, "noc", injection_index)
        if roll < plan.noc_drop_rate:
            self.dropped += 1
            plan.record("noc", "drop", target, f"flit #{injection_index}")
            return "drop"
        if roll < plan.noc_drop_rate + plan.noc_corrupt_rate:
            self.corrupted += 1
            plan.record("noc", "corrupt", target,
                        f"flit #{injection_index}")
            return "corrupt"
        return "ok"

    def corruption_mask(self, injection_index: int) -> int:
        """Which payload bit the fault flips (never zero)."""
        bit = int(_draw(self.plan.seed, "noc", "bit", injection_index)
                  * 32) % 32
        return 1 << bit


class BitstreamFaultInjector:
    """Decides the outcome of each configuration-port load attempt."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def load_outcome(self, image_name: str, attempt: int) -> str:
        """``"ok"`` | ``"fail"`` | ``"crc"`` for one load attempt."""
        plan = self.plan
        roll = _draw(plan.seed, "bitstream", image_name, attempt)
        if roll < plan.bitstream_fail_rate:
            plan.record("bitstream", "load-fail", image_name,
                        f"attempt {attempt}")
            return "fail"
        if roll < plan.bitstream_fail_rate + plan.bitstream_crc_rate:
            plan.record("bitstream", "crc-mismatch", image_name,
                        f"attempt {attempt}")
            return "crc"
        return "ok"


class DMAFaultInjector:
    """Decides the outcome of each DMA transfer attempt."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._transfers = 0

    def next_transfer(self) -> int:
        self._transfers += 1
        return self._transfers

    def transfer_fails(self, transfer_index: int, attempt: int,
                       target: str) -> bool:
        plan = self.plan
        if _draw(plan.seed, "dma", transfer_index,
                 attempt) < plan.dma_fail_rate:
            plan.record("dma", "transfer-error", target,
                        f"transfer #{transfer_index} attempt {attempt}")
            return True
        return False


class SoftcoreFaultInjector:
    """Decides whether (and where) a softcore run takes a spurious trap."""

    #: Injected traps land within this many retired instructions of the
    #: start of the run — early enough that short programs still hit
    #: them, late enough to interrupt real work.
    TRAP_HORIZON = 4_096

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def trap_point(self, core_id: str, attempt: int) -> Optional[int]:
        """Instruction index at which attempt ``attempt`` traps, or None.

        Pure draw — the core calls :meth:`record_fired` if (and only
        if) the program actually reaches the trap point, so the plan
        log never claims an upset that landed after ``ebreak``.
        """
        plan = self.plan
        if _draw(plan.seed, "softcore", core_id,
                 attempt) < plan.softcore_trap_rate:
            return 1 + int(_draw(plan.seed, "softcore", "point", core_id,
                                 attempt) * self.TRAP_HORIZON)
        return None

    def record_fired(self, core_id: str, attempt: int,
                     point: int) -> None:
        self.plan.record("softcore", "trap", core_id,
                         f"attempt {attempt} @ instruction {point}")


class TransportFaultInjector:
    """Decides the fate of each remote-store request.

    The sharded store client (:mod:`repro.store.remote.client`) calls
    :meth:`on_request` once per attempt with the shard address and a
    per-shard monotone request index.  Draws are keyed by
    ``(shard, index, attempt)``, so a retry re-draws — transient drops
    clear on retry — while a shard in :attr:`FaultPlan.kill_shards`
    fails *every* request past its kill index, forcing the client all
    the way through its retry budget into breaker quarantine and
    degraded mode.

    ``"delay"`` outcomes carry a deterministic stall via
    :meth:`delay_seconds` so delayed-but-successful requests exercise
    hedged reads without real nondeterminism.
    """

    #: Injected delays land in (0, MAX_DELAY_SECONDS] — long enough to
    #: trip a hedge threshold in tests, short enough not to stall CI.
    MAX_DELAY_SECONDS = 0.05

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._request_index: Dict[str, int] = {}

    def next_request(self, shard: str) -> int:
        """The per-shard monotone request index (0-based)."""
        index = self._request_index.get(shard, 0)
        self._request_index[shard] = index + 1
        return index

    def shard_dead(self, shard: str, index: int) -> bool:
        """True when ``shard`` is killed at or before request ``index``."""
        kill_at = self.plan.kill_shards.get(shard)
        return kill_at is not None and index >= kill_at

    def on_request(self, shard: str, index: int, attempt: int = 1) -> str:
        """``"ok" | "drop" | "delay" | "corrupt" | "half-close" | "kill"``
        for one request attempt."""
        plan = self.plan
        if self.shard_dead(shard, index):
            plan.record("transport", "shard-kill", shard,
                        f"request #{index} attempt {attempt}")
            return "kill"
        roll = _draw(plan.seed, "transport", shard, index, attempt)
        edge = plan.transport_drop_rate
        if roll < edge:
            plan.record("transport", "drop", shard,
                        f"request #{index} attempt {attempt}")
            return "drop"
        edge += plan.transport_corrupt_rate
        if roll < edge:
            plan.record("transport", "corrupt-frame", shard,
                        f"request #{index} attempt {attempt}")
            return "corrupt"
        edge += plan.transport_half_close_rate
        if roll < edge:
            plan.record("transport", "half-close", shard,
                        f"request #{index} attempt {attempt}")
            return "half-close"
        edge += plan.transport_delay_rate
        if roll < edge:
            plan.record("transport", "delay", shard,
                        f"request #{index} attempt {attempt}")
            return "delay"
        return "ok"

    def delay_seconds(self, shard: str, index: int) -> float:
        """Deterministic stall for a ``"delay"`` outcome (never zero)."""
        frac = _draw(self.plan.seed, "transport", "stall", shard, index)
        return self.MAX_DELAY_SECONDS * (0.2 + 0.8 * frac)


class OverloadFaultInjector:
    """Generates a deterministic submit flood (the overload domain).

    Chaos tests point this at a daemon (or an in-process
    :class:`~repro.service.CompileService`) to drive it past its
    admission watermarks: :meth:`burst` yields ``(tenant, priority,
    cost)`` tuples that are a pure function of ``(seed, burst,
    index)``, so the exact shed/admit split replays on every run.
    The injector only *describes* the flood — the caller owns the
    submission (sync, async, threaded) and records what came back via
    :meth:`record_shed` / :meth:`record_admitted`.
    """

    #: A flood request's scheduler cost is 1..MAX_COST.
    MAX_COST = 2

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.shed = 0
        self.admitted = 0

    def request(self, burst: int, index: int
                ) -> Tuple[str, str, int]:
        """The ``(tenant, priority, cost)`` of one flood request."""
        plan = self.plan
        tenants = plan.overload_tenants
        tenant = tenants[int(_draw(plan.seed, "overload", "tenant",
                                   burst, index) * len(tenants))
                         % len(tenants)]
        roll = _draw(plan.seed, "overload", "class", burst, index)
        if roll < plan.overload_deadline_fraction:
            priority = "deadline"
        elif _draw(plan.seed, "overload", "batch", burst, index) < 0.5:
            priority = "batch"
        else:
            priority = "interactive"
        cost = 1 + int(_draw(plan.seed, "overload", "cost", burst,
                             index) * self.MAX_COST) % self.MAX_COST
        return tenant, priority, cost

    def burst(self, burst: int) -> List[Tuple[str, str, int]]:
        """All requests of burst ``burst`` (0-based), in order."""
        if not (0 <= burst < self.plan.overload_bursts):
            raise ValueError(
                f"burst must be in [0, {self.plan.overload_bursts}), "
                f"got {burst}")
        return [self.request(burst, i)
                for i in range(self.plan.overload_burst_size)]

    def bursts(self) -> List[List[Tuple[str, str, int]]]:
        """The whole flood, burst by burst."""
        return [self.burst(b)
                for b in range(self.plan.overload_bursts)]

    def record_shed(self, tenant: str, reason: str,
                    burst: int, index: int) -> None:
        self.shed += 1
        self.plan.record("overload", f"shed:{reason}", tenant,
                         f"burst {burst} request {index}")

    def record_admitted(self, tenant: str, burst: int,
                        index: int) -> None:
        self.admitted += 1
