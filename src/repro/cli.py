"""Command-line interface: ``python -m repro.cli``.

A small ``pld``-style driver around the flows, mirroring how the
paper's Makefile targets are used day to day:

.. code-block:: console

    $ python -m repro.cli apps
    $ python -m repro.cli compile optical-flow --flow o1 --out build/
    $ python -m repro.cli compile optical-flow --cache-dir .pld-cache
    $ python -m repro.cli edit optical-flow --cache-dir .pld-cache
    $ python -m repro.cli run optical-flow --flow o0
    $ python -m repro.cli tables --apps 3d-rendering,bnn
    $ python -m repro.cli serve .pld-state --port 7411
    $ python -m repro.cli submit optical-flow --server 127.0.0.1:7411
    $ python -m repro.cli fsck .pld-cache

Every compile verb is a thin frontend over
:class:`repro.service.CompileService` — the session-manager layer that
owns engine/store/journal/tracer wiring.  ``compile``/``run``/``tables``
construct a private in-process service; ``serve`` exposes a shared one
over TCP so many tenants multiplex one store and one worker pool, and
``submit``/``status``/``result`` are the matching client verbs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.errors import DeadlineExceeded, DeadlockError, PLDError
from repro.core import (
    O0Flow,
    O1Flow,
    O3Flow,
    VitisFlow,
    format_area_table,
    format_compile_table,
    format_performance_table,
)
from repro.core.flows import FLOWS
from repro.platform import HostProgram

DEFAULT_SERVER = "127.0.0.1:7411"


def _flow(name: str, effort: float):
    # Look the class up first, construct outside the handler: a
    # KeyError raised inside a flow's __init__ is a real bug and must
    # propagate, not be misreported as "unknown flow".
    try:
        cls = FLOWS[name]
    except KeyError:
        raise SystemExit(f"unknown flow {name!r}; choose from "
                         f"{sorted(FLOWS)}")
    return cls(effort=effort)


def _app(name: str):
    from repro.rosetta import get_app
    return get_app(name)


def cmd_apps(_args) -> int:
    from repro.rosetta import all_apps
    print(f"{'app':20s} {'ops':>4s} {'description'}")
    for name, app in all_apps().items():
        print(f"{name:20s} {len(app.project.graph.operators):4d} "
              f"{app.description}")
    return 0


def _tracer(args):
    """A live tracer when ``--trace FILE`` was given, else None."""
    if getattr(args, "trace", None):
        from repro.trace import Tracer
        return Tracer()
    return None


def _write_trace(tracer, args) -> None:
    if tracer is not None and getattr(args, "trace", None):
        tracer.write_chrome_trace(args.trace)
        print(f"wrote trace {args.trace} "
              f"({len(tracer)} events; view with 'pld trace "
              f"{args.trace}' or load into Perfetto)")


def _service(args, tracer=None):
    """An in-process :class:`CompileService` wired from the CLI flags.

    This is the whole of the CLI's build orchestration now: stores,
    journals, deadlines and crash plans are the service's job (the
    same layer ``pld serve`` runs shared), so one-shot verbs just
    submit a request and print the outcome.
    """
    from repro.service import CompileService, ServiceConfig
    return CompileService(ServiceConfig(
        cache_dir=getattr(args, "cache_dir", None),
        store_urls=getattr(args, "store", None),
        workers=getattr(args, "workers", None),
        tracer=tracer, notify=print))


def _request(args):
    """A :class:`CompileRequest` from the compile-verb flags."""
    from repro.service import CompileRequest
    return CompileRequest(
        app=args.app,
        flow=getattr(args, "flow", "o1"),
        effort=args.effort,
        resume=bool(getattr(args, "resume", False)),
        deadline=getattr(args, "deadline", None),
        sim_engine=getattr(args, "sim_engine", None),
        crash_at_step=getattr(args, "crash_at_step", None),
        crash_point=getattr(args, "crash_point", "mid"))


def _apply_sim_engine(args) -> None:
    """Make ``--sim-engine`` the process default for ambient kernels."""
    name = getattr(args, "sim_engine", None)
    if name:
        from repro.simengine import set_default_engine
        set_default_engine(name)


def cmd_compile(args) -> int:
    if getattr(args, "resume", False) \
            and not getattr(args, "cache_dir", None):
        raise SystemExit("--resume needs --cache-dir (the journal lives "
                         "in the store)")
    _apply_sim_engine(args)
    tracer = _tracer(args)
    service = _service(args, tracer)
    try:
        outcome = service.compile(_request(args))
    finally:
        service.close()
    build = outcome.build
    times = build.compile_times
    if args.flow == "o0":
        print(f"compiled {args.app} with -O0 in "
              f"{build.riscv_seconds:.1f} modeled seconds")
    else:
        print(f"compiled {args.app} with {build.flow}: "
              f"hls {times.hls:.0f}s syn {times.syn:.0f}s "
              f"p&r {times.pnr:.0f}s bit {times.bit:.0f}s "
              f"-> total {times.total:.0f}s (modeled)")
    print(f"performance: {build.performance.per_input_text()} per input "
          f"at {build.performance.fmax_mhz:.0f} MHz "
          f"(bottleneck {build.performance.bottleneck})")
    print(f"area: {build.area.luts} LUTs, {build.area.brams} BRAM18, "
          f"{build.area.dsps} DSPs"
          + (f", {build.area.pages} pages" if build.area.pages else ""))
    print(f"pages rebuilt: {len(build.recompiled_pages)}")
    if build.resumed:
        print(f"resume: skipped {len(build.resumed)} journaled step(s) "
              f"from the interrupted build")
    if build.cache_stats:
        stats = build.cache_stats
        print(f"cache: {stats.get('hits', 0)} hits, "
              f"{stats.get('misses', 0)} misses, "
              f"{stats.get('evictions', 0)} evictions")
        if "remote_hits" in stats:
            print(f"store: {stats['remote_hits']} remote hits, "
                  f"{stats.get('degraded_gets', 0) + stats.get('degraded_puts', 0)}"
                  f" degraded ops, "
                  f"{len(stats.get('quarantined', []))} shard(s) "
                  f"quarantined, "
                  f"{sum(stats.get('pending', {}).values())} write(s) "
                  f"owed")
    dedup = outcome.dedup
    if (getattr(args, "cache_dir", None) or getattr(args, "store", None)) \
            and dedup.get("steps"):
        print(f"dedup: {dedup['hits']}/{dedup['steps']} step(s) served "
              f"from the store ({100 * dedup['ratio']:.0f}%), "
              f"impl {dedup['impl_hits']}/{dedup['impl_steps']} "
              f"({100 * dedup['impl_ratio']:.0f}%)")
    if getattr(args, "manifest", None):
        import json
        with open(args.manifest, "w") as handle:
            json.dump(build.manifest(), handle, indent=2, sort_keys=True)
        print(f"wrote build manifest {args.manifest}")
    if args.out:
        written = build.write_artifacts(args.out)
        print(f"wrote {len(written)} artefacts to {args.out}")
    _write_trace(tracer, args)
    return 0


def cmd_fsck(args) -> int:
    """Check and repair an artifact store (local dir or remote shards)."""
    from repro.resilience import TMP_GRACE_SECONDS

    if args.fsck_grace is None:
        args.fsck_grace = TMP_GRACE_SECONDS
    if getattr(args, "shard", None):
        return _fsck_shards(args)
    if not args.cache_dir:
        raise SystemExit("fsck needs a store directory or --shard URLS")
    from repro.resilience import fsck_store

    report = fsck_store(args.cache_dir, grace=args.fsck_grace)
    print(report.summary())
    return 0


def _fsck_shards(args) -> int:
    """Run the store doctor on every remote shard backend."""
    from repro.store.remote import ShardClient, parse_store_urls

    failures = 0
    for url in parse_store_urls(args.shard):
        client = ShardClient(url)
        try:
            response, _ = client.request(
                "fsck", extra={"grace": args.fsck_grace})
        except PLDError as exc:
            print(f"fsck {url}: UNREACHABLE ({exc})")
            failures += 1
            continue
        finally:
            client.close()
        report = response.get("report", {})
        state = "clean" if report.get("clean") else "healed defects"
        print(f"fsck {url} ({report.get('cache_dir', '?')}): {state}, "
              f"{report.get('objects_checked', 0)} objects verified")
        for action in report.get("actions", []):
            print(f"  - {action}")
    return 2 if failures else 0


def cmd_store(args) -> int:
    """``pld store serve`` — run one shard backend in the foreground."""
    if args.store_command == "serve":
        from repro.store.remote import serve_forever
        serve_forever(args.cache_dir, host=args.host, port=args.port)
        return 0
    raise SystemExit(f"unknown store command {args.store_command!r}")


def cmd_edit(args) -> int:
    """The incremental loop demo: warm compile, one edit, delta reload."""
    from repro.core import touch_spec, format_incremental_report

    app = _app(args.app)
    tracer = _tracer(args)
    service = _service(args, tracer)
    session = service.open_session(effort=args.effort)
    try:
        build = session.compile(app.project)
        print(f"baseline: {build.describe()}; "
              f"{len(build.recompiled_pages)} page(s) rebuilt")

        operator = args.operator
        if operator is None:
            # Default to the first HW operator so the demo touches a page.
            hw = [name for name, op in app.project.graph.operators.items()
                  if op.target == "HW"]
            if not hw:
                raise SystemExit(f"{args.app} has no HW operators to edit")
            operator = hw[0]
        op = app.project.graph.operators.get(operator)
        if op is None:
            raise SystemExit(f"no operator {operator!r} in {args.app}")

        host = HostProgram(build, tracer=tracer)
        host.configure()
        result = session.apply_edit(operator, touch_spec(op.hls_spec),
                                    op.sample_spec)
        session.reload(host, result)
        print(format_incremental_report(result))
        if args.timeline:
            print(host.timeline.summarize())
    finally:
        session.close()
        service.close()
    _write_trace(tracer, args)
    return 0


def cmd_run(args) -> int:
    _apply_sim_engine(args)
    tracer = _tracer(args)
    service = _service(args, tracer)
    try:
        outcome = service.compile(_request(args))
    finally:
        service.close()
    build = outcome.build
    host = HostProgram(build, tracer=tracer)
    outputs = host.run(_app(args.app).project.sample_inputs)
    for name, tokens in outputs.items():
        preview = tokens[:8]
        suffix = " ..." if len(tokens) > 8 else ""
        print(f"{name}: {len(tokens)} tokens {preview}{suffix}")
    if args.timeline:
        print(host.timeline.summarize())
    _write_trace(tracer, args)
    return 0


def cmd_tables(args) -> int:
    from repro.rosetta import all_apps
    chosen = args.apps.split(",") if args.apps else None
    # One engine from the service factory, shared across every flow and
    # app, so repeated front-end steps hit the in-memory cache.
    service = _service(args)
    engine = service.build_engine()
    builds: Dict[str, Dict[str, object]] = {}
    try:
        for name, app in all_apps().items():
            if chosen and name not in chosen:
                continue
            builds[name] = {
                "Vitis": VitisFlow(effort=args.effort).compile(
                    app.project, engine),
                "PLD -O3": O3Flow(effort=args.effort).compile(
                    app.project, engine),
                "PLD -O1": O1Flow(effort=args.effort).compile(
                    app.project, engine),
                "PLD -O0": O0Flow(effort=args.effort).compile(
                    app.project, engine),
            }
    finally:
        engine.close()
        journal = getattr(engine, "journal", None)
        if journal is not None:
            journal.close()
        service.close()
    print("== compile time (Tab. 2) ==")
    print(format_compile_table(builds))
    print("\n== performance (Tab. 3) ==")
    print(format_performance_table(builds))
    print("\n== area (Tab. 4) ==")
    print(format_area_table(builds))
    return 0


# -- the daemon and its client verbs -----------------------------------------

def cmd_serve(args) -> int:
    """``pld serve`` — run the compile service as a TCP daemon."""
    from repro.service.daemon import serve

    quotas = {}
    for spec in args.quota or []:
        tenant, _, workers = spec.partition("=")
        if not tenant or not workers.isdigit():
            raise SystemExit(f"bad --quota {spec!r} (want TENANT=N)")
        quotas[tenant] = int(workers)
    tokens = {}
    for spec in args.token or []:
        tenant, sep, secret = spec.partition("=")
        if not tenant or not sep or not secret:
            raise SystemExit(f"bad --token {spec!r} "
                             f"(want TENANT=SECRET)")
        tokens[tenant] = secret
    rates = {}
    for spec in args.rate or []:
        tenant, sep, rate = spec.partition("=")
        rate = rate[:-2] if rate.endswith("/s") else rate
        try:
            rates[tenant] = float(rate)
        except ValueError:
            rate = ""
        if not tenant or not sep or not rate or rates[tenant] <= 0:
            raise SystemExit(f"bad --rate {spec!r} (want TENANT=N/s)")
    return serve(args.state, host=args.host, port=args.port,
                 workers=args.workers, slots=args.slots,
                 quotas=quotas, default_quota=args.default_quota,
                 trace=args.trace, store_urls=args.store,
                 tokens=tokens,
                 max_queued=args.max_queued,
                 max_queued_per_tenant=args.max_queued_per_tenant,
                 rates=rates, default_rate=args.default_rate,
                 brownout_high=args.brownout_high,
                 brownout_low=args.brownout_low,
                 hedge_quantile=args.hedge_quantile,
                 peers=args.peer or [],
                 max_connections=args.max_connections,
                 frame_timeout=args.frame_timeout)


def _service_client(args):
    from repro.service import ServiceClient

    server = getattr(args, "server", DEFAULT_SERVER)
    host, _, port = server.rpartition(":")
    try:
        return ServiceClient(host or "127.0.0.1", int(port),
                             token=getattr(args, "token", None))
    except ValueError:
        raise SystemExit(f"bad --server {server!r} (want HOST:PORT)")


def cmd_submit(args) -> int:
    """Enqueue a compile/edit on a ``pld serve`` daemon."""
    from repro.errors import ServiceError

    with _service_client(args) as client:
        try:
            ticket = client.submit(
                args.app, wait=getattr(args, "wait", None),
                flow=args.flow, effort=args.effort,
                tenant=args.tenant, session=args.session,
                priority=args.priority, deadline=args.deadline,
                cost=args.cost, edit_operator=args.edit_operator,
                sim_engine=args.sim_engine,
                crash_at_step=getattr(args, "crash_at_step", None))
        except ServiceError as exc:
            if exc.kind not in ("overloaded", "draining"):
                raise
            hints = []
            if exc.retry_after:
                hints.append(f"retry in ~{exc.retry_after:g}s "
                             f"(or pass --wait to retry here)")
            if exc.peers:
                hints.append(f"peers: {', '.join(exc.peers)}")
            suffix = f" — {'; '.join(hints)}" if hints else ""
            raise SystemExit(f"{exc.kind}: {exc}{suffix}")
        if client.retries:
            print(f"admitted after {client.retries} overload "
                  f"retry(ies)", flush=True)
    print(ticket)
    return 0


def cmd_drain(args) -> int:
    """Start a zero-downtime drain on a ``pld serve`` daemon."""
    with _service_client(args) as client:
        response = client.drain()
    peers = response.get("peers") or []
    suffix = f"; peers: {', '.join(peers)}" if peers else ""
    print(f"draining: running builds finish, new submits answer "
          f"kind=draining{suffix}")
    return 0


def cmd_health(args) -> int:
    """Print a daemon's liveness/readiness; exit 1 when not ready."""
    with _service_client(args) as client:
        health = client.health()
    print(f"live={health['live']} ready={health['ready']} "
          f"draining={health['draining']} "
          f"brownout={health['brownout']} "
          f"queued={health['queued']} running={health['running']} "
          f"connections={health['connections']}")
    return 0 if health.get("ready") else 1


def cmd_status(args) -> int:
    with _service_client(args) as client:
        status = client.status(args.ticket)
    position = status.get("position")
    queue = f" (queue position {position})" if position is not None else ""
    print(f"{status['ticket']}: {status['state']}{queue} "
          f"[tenant {status.get('tenant')}, app {status.get('app')}]")
    return 0


def cmd_result(args) -> int:
    """Wait for a daemon-side build and print its summary."""
    with _service_client(args) as client:
        summary, manifest = client.result(args.ticket,
                                          timeout=args.timeout)
    print(f"{summary['ticket']}: {summary['kind']} done "
          f"in {summary['wall_seconds']:.2f}s wall")
    if summary.get("describe"):
        print(f"build: {summary['describe']}; "
              f"{summary.get('pages_rebuilt', 0)} page(s) rebuilt")
    dedup = summary.get("dedup") or {}
    if dedup.get("steps"):
        print(f"dedup: {dedup['hits']}/{dedup['steps']} step(s) served "
              f"from the store ({100 * dedup['ratio']:.0f}%), "
              f"impl {dedup['impl_hits']}/{dedup['impl_steps']} "
              f"({100 * dedup['impl_ratio']:.0f}%)")
    if summary.get("resumed"):
        print(f"resume: skipped {summary['resumed']} journaled step(s) "
              f"from the interrupted build")
    if summary.get("edit"):
        edit = summary["edit"]
        print(f"edit: {edit['operator']} -> {edit['dirty_steps']} dirty "
              f"step(s), pages {edit['pages_reloaded']}, "
              f"{edit['speedup']:.1f}x vs cold")
    if getattr(args, "manifest", None) and manifest:
        with open(args.manifest, "wb") as handle:
            handle.write(manifest)
        print(f"wrote build manifest {args.manifest}")
    return 0


def cmd_trace(args) -> int:
    """Render a saved Chrome trace-event file as a text tree."""
    from repro.trace import format_trace_tree, load_chrome_trace
    try:
        data = load_chrome_trace(args.file)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.file}")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(format_trace_tree(data))
    return 0


def cmd_bench_args(bench_args: list) -> int:
    """Run the tracked benchmark suite (repro.perf.bench)."""
    from repro.perf.bench import main as bench_main
    return bench_main(bench_args)


def cmd_bench(args) -> int:
    return cmd_bench_args(args.bench_args)


def cmd_floorplan(_args) -> int:
    from repro.fabric import FLOORPLAN, XCU50
    print(f"device: {XCU50.name}  {XCU50.luts:,} LUTs  "
          f"{XCU50.brams:,} BRAM18  {XCU50.dsps:,} DSPs  "
          f"{len(XCU50.slrs)} SLRs")
    for page in FLOORPLAN:
        print(f"  page {page.number:2d}  SLR{page.slr}  "
              f"{page.page_type.name}: {page.luts:6,} LUTs  "
              f"{page.brams:3d} B18  {page.dsps:3d} DSP")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="PLD reproduction driver (compile/run/report)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the Rosetta applications")

    compile_p = sub.add_parser("compile", help="compile one app")
    compile_p.add_argument("app")
    compile_p.add_argument("--flow", default="o1",
                           choices=sorted(FLOWS))
    compile_p.add_argument("--effort", type=float, default=0.3)
    compile_p.add_argument("--out", default=None,
                           help="write flow artefacts to this directory")
    compile_p.add_argument("--cache-dir", default=None,
                           help="persistent artifact store; a second "
                                "compile over the same directory "
                                "rebuilds nothing")
    compile_p.add_argument("--store", metavar="URLS", default=None,
                           help="comma-separated shard servers "
                                "(tcp://host:port,...) started with "
                                "'pld store serve'; --cache-dir "
                                "becomes the local fallback tier")
    compile_p.add_argument("--workers", "-j", type=int, default=None,
                           help="run independent build steps on this "
                                "many worker processes (modeled compile "
                                "times are unchanged)")
    compile_p.add_argument("--trace", metavar="FILE", default=None,
                           help="write a Chrome trace-event JSON of "
                                "the build (build steps, cluster node "
                                "lanes, flow phases)")
    compile_p.add_argument("--resume", action="store_true",
                           help="replay the store's build journal from "
                                "an interrupted compile; completed "
                                "steps are skipped (needs --cache-dir)")
    compile_p.add_argument("--deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="wall-clock budget for the compile; on "
                                "expiry the build stops with a "
                                "structured error, finished artefacts "
                                "stay banked, and --resume continues")
    compile_p.add_argument("--manifest", metavar="FILE", default=None,
                           help="write the build manifest (step -> "
                                "content key) as JSON, for diffing")
    compile_p.add_argument("--sim-engine", default=None,
                           choices=("scalar", "vector"),
                           help="simulation engine for the placer/ISS "
                                "kernels; 'vector' uses the numpy "
                                "twins (bit-identical results, faster "
                                "at scale)")
    # Crash-injection hooks for the resume smoke tests: SIGKILL the
    # process at the Nth cache-miss step.  Deliberately undocumented.
    compile_p.add_argument("--crash-at-step", type=int, default=None,
                           help=argparse.SUPPRESS)
    compile_p.add_argument("--crash-point", default="mid",
                           choices=("begin", "mid", "end"),
                           help=argparse.SUPPRESS)

    edit_p = sub.add_parser(
        "edit", help="demo the incremental edit-compile-reload loop")
    edit_p.add_argument("app")
    edit_p.add_argument("--operator", default=None,
                        help="operator to edit (default: first HW op)")
    edit_p.add_argument("--effort", type=float, default=0.3)
    edit_p.add_argument("--cache-dir", default=None,
                        help="persistent artifact store shared with "
                             "'compile'")
    edit_p.add_argument("--store", metavar="URLS", default=None,
                        help="comma-separated shard servers "
                             "(tcp://host:port,...)")
    edit_p.add_argument("--timeline", action="store_true",
                        help="print the host reload timeline")
    edit_p.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the "
                             "cold compile + warm edit + reload")

    run_p = sub.add_parser("run", help="compile + load + execute one app")
    run_p.add_argument("app")
    run_p.add_argument("--flow", default="o0", choices=sorted(FLOWS))
    run_p.add_argument("--effort", type=float, default=0.3)
    run_p.add_argument("--timeline", action="store_true",
                       help="print the host configuration/run timeline")
    run_p.add_argument("--cache-dir", default=None,
                       help="persistent artifact store shared with "
                            "'compile'")
    run_p.add_argument("--store", metavar="URLS", default=None,
                       help="comma-separated shard servers "
                            "(tcp://host:port,...)")
    run_p.add_argument("--workers", "-j", type=int, default=None,
                       help="run independent build steps on this many "
                            "worker processes")
    run_p.add_argument("--sim-engine", default=None,
                       choices=("scalar", "vector"),
                       help="simulation engine for the placer/ISS/NoC "
                            "kernels (bit-identical; vector is faster "
                            "at scale)")
    run_p.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON of the "
                            "compile + configure + run")

    tables_p = sub.add_parser("tables",
                              help="regenerate Tab. 2/3/4 for apps")
    tables_p.add_argument("--apps", default=None,
                          help="comma-separated subset")
    tables_p.add_argument("--effort", type=float, default=0.3)
    tables_p.add_argument("--cache-dir", default=None,
                          help="persistent artifact store shared with "
                               "'compile'")
    tables_p.add_argument("--workers", "-j", type=int, default=None,
                          help="run independent build steps on this "
                               "many worker processes")

    sub.add_parser("floorplan", help="print the page floorplan")

    serve_p = sub.add_parser(
        "serve", help="run the compile service as a TCP daemon "
                      "(multi-tenant; blocks until SIGTERM/shutdown)")
    serve_p.add_argument("state", nargs="?", default=".pld-state",
                         help="state directory: shared artifact store "
                              "plus per-session journals and leases "
                              "(default .pld-state)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="bind port (0 picks a free one and "
                              "prints it)")
    serve_p.add_argument("--workers", "-j", type=int, default=None,
                         help="share one pool of this many worker "
                              "processes across all tenants")
    serve_p.add_argument("--slots", type=int, default=4,
                         help="concurrent requests the scheduler may "
                              "run (default 4)")
    serve_p.add_argument("--quota", action="append", metavar="TENANT=N",
                         help="cap one tenant at N of the scheduler "
                              "slots (repeatable)")
    serve_p.add_argument("--default-quota", type=int, default=None,
                         help="slot cap for tenants without an "
                              "explicit --quota")
    serve_p.add_argument("--trace", metavar="FILE", default=None,
                         help="write a Chrome trace-event JSON of all "
                              "served requests (per-tenant lanes) on "
                              "shutdown")
    serve_p.add_argument("--store", metavar="URLS", default=None,
                         help="comma-separated shard URLs "
                              "(tcp://host:port,...): front this "
                              "store fleet — shared dedup plane and "
                              "cross-daemon session adoption")
    serve_p.add_argument("--token", action="append",
                         metavar="TENANT=SECRET",
                         help="require this shared secret on submits "
                              "for TENANT (repeatable; any --token "
                              "switches auth on for all tenants)")
    serve_p.add_argument("--max-queued", type=int, default=None,
                         metavar="N",
                         help="admission control: bound the queue at N "
                              "requests; past 50%% of N batch-class "
                              "submits shed, past 80%% interactive "
                              "too (kind=overloaded + retry_after)")
    serve_p.add_argument("--max-queued-per-tenant", type=int,
                         default=None, metavar="N",
                         help="per-tenant queued-request bound")
    serve_p.add_argument("--rate", action="append",
                         metavar="TENANT=N/s",
                         help="token-bucket rate limit for one tenant "
                              "(repeatable)")
    serve_p.add_argument("--default-rate", type=float, default=None,
                         metavar="N",
                         help="requests/second for tenants without an "
                              "explicit --rate")
    serve_p.add_argument("--brownout-high", type=float, default=None,
                         metavar="DEPTH",
                         help="queue-depth EWMA above which brownout "
                              "starts: new compiles route to -O0 and "
                              "hedged retries pause (default 0.75 x "
                              "--max-queued)")
    serve_p.add_argument("--brownout-low", type=float, default=None,
                         metavar="DEPTH",
                         help="EWMA below which brownout ends "
                              "(default half of --brownout-high)")
    serve_p.add_argument("--hedge-quantile", type=float, default=None,
                         metavar="Q",
                         help="hedge store reads / o1 page jobs past "
                              "this latency quantile (disabled during "
                              "brownout)")
    serve_p.add_argument("--peer", action="append",
                         metavar="HOST:PORT",
                         help="peer daemon suggested to clients when "
                              "this one is draining (repeatable)")
    serve_p.add_argument("--max-connections", type=int, default=None,
                         metavar="N",
                         help="concurrent-connection cap; excess "
                              "connections get one overloaded error "
                              "frame and are closed")
    serve_p.add_argument("--frame-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-frame read/write budget once a "
                              "frame starts (slow-loris guard; idle "
                              "keep-alives are unaffected)")

    submit_p = sub.add_parser(
        "submit", help="enqueue a compile on a pld serve daemon; "
                       "prints the ticket id")
    submit_p.add_argument("app")
    submit_p.add_argument("--server", default=DEFAULT_SERVER,
                          metavar="HOST:PORT")
    submit_p.add_argument("--flow", default="o1",
                          choices=sorted(FLOWS))
    submit_p.add_argument("--effort", type=float, default=0.3)
    submit_p.add_argument("--tenant", default="default")
    submit_p.add_argument("--token", default=None, metavar="SECRET",
                          help="tenant shared secret (daemons started "
                               "with --token require it)")
    submit_p.add_argument("--session", default=None,
                          help="named leased session: compiles reuse "
                               "one incremental session and journal, "
                               "and resume after a daemon crash")
    submit_p.add_argument("--priority", default="interactive",
                          choices=("interactive", "batch"))
    submit_p.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget; also schedules the "
                               "request in the deadline class")
    submit_p.add_argument("--cost", type=int, default=1,
                          help="scheduler slots this request occupies")
    submit_p.add_argument("--sim-engine", default=None,
                          choices=("scalar", "vector"),
                          help="simulation engine for this request's "
                               "placer/ISS kernels (bit-identical)")
    submit_p.add_argument("--edit-operator", default=None,
                          metavar="OP",
                          help="submit an incremental edit of this "
                               "operator ('first-hw' picks one) "
                               "instead of a compile (needs --session)")
    submit_p.add_argument("--crash-at-step", type=int, default=None,
                          help=argparse.SUPPRESS)
    submit_p.add_argument("--wait", type=float, nargs="?",
                          const=60.0, default=None, metavar="SECONDS",
                          help="on an overloaded/draining rejection, "
                               "back off by the server's retry_after "
                               "hint (plus jitter) and retry for up "
                               "to this long (default 60)")

    drain_p = sub.add_parser(
        "drain", help="zero-downtime stop of a pld serve daemon: new "
                      "submits bounce to peers, running builds "
                      "finish, sessions republish, then it exits")
    drain_p.add_argument("--server", default=DEFAULT_SERVER,
                         metavar="HOST:PORT")

    health_p = sub.add_parser(
        "health", help="daemon liveness/readiness (ready=false while "
                       "draining)")
    health_p.add_argument("--server", default=DEFAULT_SERVER,
                          metavar="HOST:PORT")

    status_p = sub.add_parser(
        "status", help="queue state of a submitted ticket")
    status_p.add_argument("ticket")
    status_p.add_argument("--server", default=DEFAULT_SERVER,
                          metavar="HOST:PORT")

    result_p = sub.add_parser(
        "result", help="wait for a ticket and print its summary")
    result_p.add_argument("ticket")
    result_p.add_argument("--server", default=DEFAULT_SERVER,
                          metavar="HOST:PORT")
    result_p.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS")
    result_p.add_argument("--manifest", metavar="FILE", default=None,
                          help="write the build manifest (step -> "
                               "content key) as JSON, for diffing")

    fsck_p = sub.add_parser(
        "fsck", help="check and repair an artifact store (orphan tmp "
                     "files, corrupt objects, torn journal tail)")
    fsck_p.add_argument("cache_dir", nargs="?", default=None,
                        help="store directory (the --cache-dir of "
                             "compile/edit)")
    fsck_p.add_argument("--shard", metavar="URLS", default=None,
                        help="run the doctor on remote shard backends "
                             "instead (tcp://host:port,...)")
    fsck_p.add_argument("--fsck-grace", type=float, default=None,
                        metavar="SECONDS",
                        help="age threshold before an orphan .tmp "
                             "staging file is reaped (default 60; "
                             "fast CI passes 0)")

    store_p = sub.add_parser(
        "store", help="remote artifact-store administration")
    store_sub = store_p.add_subparsers(dest="store_command",
                                       required=True)
    serve_store_p = store_sub.add_parser(
        "serve", help="serve one store directory as a shard backend "
                      "(blocks; ^C stops)")
    serve_store_p.add_argument("cache_dir",
                               help="store directory this shard owns")
    serve_store_p.add_argument("--host", default="127.0.0.1")
    serve_store_p.add_argument("--port", type=int, default=0,
                               help="bind port (0 picks a free one and "
                                    "prints it)")

    trace_p = sub.add_parser(
        "trace", help="render a saved --trace file as a text tree")
    trace_p.add_argument("file", help="Chrome trace-event JSON written "
                                      "by a --trace run")

    bench_p = sub.add_parser(
        "bench", help="run the tracked benchmark suite "
        "(see 'bench --help' via repro.perf.bench)")
    bench_p.add_argument("bench_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to repro.perf.bench "
                              "(--quick, --suite, --profile, --check, "
                              "--output, --repeats)")
    return parser


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # Forward everything after 'bench' verbatim (argparse REMAINDER
        # refuses leading optionals like --quick).
        return cmd_bench_args(argv[1:])
    args = build_parser().parse_args(argv)
    handler = {
        "apps": cmd_apps,
        "compile": cmd_compile,
        "edit": cmd_edit,
        "run": cmd_run,
        "tables": cmd_tables,
        "floorplan": cmd_floorplan,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "drain": cmd_drain,
        "health": cmd_health,
        "status": cmd_status,
        "result": cmd_result,
        "bench": cmd_bench,
        "trace": cmd_trace,
        "fsck": cmd_fsck,
        "store": cmd_store,
    }[args.command]
    try:
        return handler(args)
    except DeadlineExceeded as exc:
        # A deadline expiry is not a build failure: finished artefacts
        # are banked in the store, so tell the developer how to go on.
        print(f"error: DeadlineExceeded: {exc}", file=sys.stderr)
        print(f"  completed {len(exc.completed)} step(s) before the "
              f"{exc.seconds:g}s budget ran out "
              f"({exc.elapsed:.2f}s elapsed)", file=sys.stderr)
        if exc.pending:
            preview = ", ".join(exc.pending[:4])
            more = " ..." if len(exc.pending) > 4 else ""
            print(f"  pending: {preview}{more}", file=sys.stderr)
        print("  rerun with --resume (same --cache-dir) to continue "
              "from the journal", file=sys.stderr)
        return 2
    except PLDError as exc:
        # Toolflow failures exit nonzero with a one-line diagnostic (and
        # the full structured report for deadlocks) instead of a
        # traceback — the pld driver is a build tool, not a library.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        if isinstance(exc, DeadlockError):
            from repro.core.reports import format_deadlock_report
            print(format_deadlock_report(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
