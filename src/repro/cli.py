"""Command-line interface: ``python -m repro.cli``.

A small ``pld``-style driver around the flows, mirroring how the
paper's Makefile targets are used day to day:

.. code-block:: console

    $ python -m repro.cli apps
    $ python -m repro.cli compile optical-flow --flow o1 --out build/
    $ python -m repro.cli compile optical-flow --cache-dir .pld-cache
    $ python -m repro.cli edit optical-flow --cache-dir .pld-cache
    $ python -m repro.cli run optical-flow --flow o0
    $ python -m repro.cli tables --apps 3d-rendering,bnn
    $ python -m repro.cli floorplan
    $ python -m repro.cli compile optical-flow --cache-dir .pld-cache \
          --resume
    $ python -m repro.cli fsck .pld-cache

``compile --cache-dir`` persists every build artefact in a
content-addressed store, so a second invocation over the same
directory rebuilds nothing.  ``edit`` demonstrates the incremental
loop: it compiles warm from the store, applies a one-operator edit,
and reports the pages recompiled, the partial-reconfig reload and the
delta link packets.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.errors import DeadlineExceeded, DeadlockError, PLDError
from repro.core import (
    BuildEngine,
    O0Flow,
    O1Flow,
    O3Flow,
    VitisFlow,
    format_area_table,
    format_compile_table,
    format_performance_table,
)
from repro.platform import HostProgram

FLOWS = {
    "o0": O0Flow,
    "o1": O1Flow,
    "o3": O3Flow,
    "vitis": VitisFlow,
}


def _flow(name: str, effort: float):
    # Look the class up first, construct outside the handler: a
    # KeyError raised inside a flow's __init__ is a real bug and must
    # propagate, not be misreported as "unknown flow".
    try:
        cls = FLOWS[name]
    except KeyError:
        raise SystemExit(f"unknown flow {name!r}; choose from "
                         f"{sorted(FLOWS)}")
    return cls(effort=effort)


def _app(name: str):
    from repro.rosetta import get_app
    return get_app(name)


def cmd_apps(_args) -> int:
    from repro.rosetta import all_apps
    print(f"{'app':20s} {'ops':>4s} {'description'}")
    for name, app in all_apps().items():
        print(f"{name:20s} {len(app.project.graph.operators):4d} "
              f"{app.description}")
    return 0


def _tracer(args):
    """A live tracer when ``--trace FILE`` was given, else None."""
    if getattr(args, "trace", None):
        from repro.trace import Tracer
        return Tracer()
    return None


def _write_trace(tracer, args) -> None:
    if tracer is not None and getattr(args, "trace", None):
        tracer.write_chrome_trace(args.trace)
        print(f"wrote trace {args.trace} "
              f"({len(tracer)} events; view with 'pld trace "
              f"{args.trace}' or load into Perfetto)")


def _store_client(args, tracer=None):
    """A :class:`ShardedStoreClient` for ``--store tcp://…``.

    ``--cache-dir`` doubles as the local fallback/hot tier (and hosts
    the journal); without it the fallback is memory-only, so degraded
    artefacts live only as long as the process.
    """
    from repro.store import ArtifactStore
    from repro.store.remote import ShardedStoreClient, parse_store_urls

    urls = parse_store_urls(args.store)
    fallback = ArtifactStore(cache_dir=getattr(args, "cache_dir", None))
    return ShardedStoreClient(urls, fallback=fallback, tracer=tracer)


def _engine(args, tracer=None) -> BuildEngine:
    """A build engine, persistent when ``--cache-dir`` was given,
    remote-backed when ``--store`` names shard servers, and
    process-parallel when ``--workers`` asks for more than one.

    With a persistent store the engine also carries a build journal
    (``--resume`` replays it), an optional ``--deadline`` budget and —
    for the crash-injection smoke tests — a hidden ``--crash-at-step``
    plan.
    """
    cache = None
    journal = None
    cache_dir = getattr(args, "cache_dir", None)
    if getattr(args, "store", None):
        cache = _store_client(args, tracer)
    elif cache_dir:
        from repro.store import ArtifactStore
        cache = ArtifactStore(cache_dir=cache_dir)
    if cache_dir:
        from repro.resilience import BuildJournal
        journal = BuildJournal(cache_dir,
                               resume=bool(getattr(args, "resume", False)))
        if journal.resuming and journal.interrupted:
            print(f"resuming interrupted build: "
                  f"{len(journal.completed)} journaled step(s) "
                  f"already banked in {cache_dir}")
    elif getattr(args, "resume", False):
        raise SystemExit("--resume needs --cache-dir (the journal lives "
                         "in the store)")
    deadline = None
    seconds = getattr(args, "deadline", None)
    if seconds is not None:
        from repro.resilience import Deadline
        deadline = Deadline(seconds)
    crash_plan = None
    crash_at = getattr(args, "crash_at_step", None)
    if crash_at is not None:
        from repro.faults import CrashPlan
        crash_plan = CrashPlan(crash_at,
                               point=getattr(args, "crash_point", "mid"),
                               mode="sigkill")
    workers = getattr(args, "workers", None)
    if workers is not None and workers > 1:
        from repro.core import ParallelBuildEngine
        return ParallelBuildEngine(cache=cache, workers=workers,
                                   tracer=tracer, journal=journal,
                                   deadline=deadline,
                                   crash_plan=crash_plan)
    return BuildEngine(cache=cache, tracer=tracer, journal=journal,
                       deadline=deadline, crash_plan=crash_plan)


def cmd_compile(args) -> int:
    app = _app(args.app)
    tracer = _tracer(args)
    engine = _engine(args, tracer)
    journal = getattr(engine, "journal", None)
    try:
        if journal is not None:
            journal.begin_build(args.flow, args.app)
        build = _flow(args.flow, args.effort).compile(app.project, engine)
        if journal is not None:
            journal.end_build()
    finally:
        close = getattr(engine, "close", None)
        if callable(close):
            close()
        if journal is not None:
            journal.close()
    times = build.compile_times
    if args.flow == "o0":
        print(f"compiled {args.app} with -O0 in "
              f"{build.riscv_seconds:.1f} modeled seconds")
    else:
        print(f"compiled {args.app} with {build.flow}: "
              f"hls {times.hls:.0f}s syn {times.syn:.0f}s "
              f"p&r {times.pnr:.0f}s bit {times.bit:.0f}s "
              f"-> total {times.total:.0f}s (modeled)")
    print(f"performance: {build.performance.per_input_text()} per input "
          f"at {build.performance.fmax_mhz:.0f} MHz "
          f"(bottleneck {build.performance.bottleneck})")
    print(f"area: {build.area.luts} LUTs, {build.area.brams} BRAM18, "
          f"{build.area.dsps} DSPs"
          + (f", {build.area.pages} pages" if build.area.pages else ""))
    print(f"pages rebuilt: {len(build.recompiled_pages)}")
    if build.resumed:
        print(f"resume: skipped {len(build.resumed)} journaled step(s) "
              f"from the interrupted build")
    if build.cache_stats:
        stats = build.cache_stats
        print(f"cache: {stats.get('hits', 0)} hits, "
              f"{stats.get('misses', 0)} misses, "
              f"{stats.get('evictions', 0)} evictions")
        if "remote_hits" in stats:
            print(f"store: {stats['remote_hits']} remote hits, "
                  f"{stats.get('degraded_gets', 0) + stats.get('degraded_puts', 0)}"
                  f" degraded ops, "
                  f"{len(stats.get('quarantined', []))} shard(s) "
                  f"quarantined, "
                  f"{sum(stats.get('pending', {}).values())} write(s) "
                  f"owed")
    if getattr(args, "manifest", None):
        import json
        with open(args.manifest, "w") as handle:
            json.dump(build.manifest(), handle, indent=2, sort_keys=True)
        print(f"wrote build manifest {args.manifest}")
    if args.out:
        written = build.write_artifacts(args.out)
        print(f"wrote {len(written)} artefacts to {args.out}")
    _write_trace(tracer, args)
    return 0


def cmd_fsck(args) -> int:
    """Check and repair an artifact store (local dir or remote shards)."""
    from repro.resilience import TMP_GRACE_SECONDS

    if args.fsck_grace is None:
        args.fsck_grace = TMP_GRACE_SECONDS
    if getattr(args, "shard", None):
        return _fsck_shards(args)
    if not args.cache_dir:
        raise SystemExit("fsck needs a store directory or --shard URLS")
    from repro.resilience import fsck_store

    report = fsck_store(args.cache_dir, grace=args.fsck_grace)
    print(report.summary())
    return 0


def _fsck_shards(args) -> int:
    """Run the store doctor on every remote shard backend."""
    from repro.store.remote import ShardClient, parse_store_urls

    failures = 0
    for url in parse_store_urls(args.shard):
        client = ShardClient(url)
        try:
            response, _ = client.request(
                "fsck", extra={"grace": args.fsck_grace})
        except PLDError as exc:
            print(f"fsck {url}: UNREACHABLE ({exc})")
            failures += 1
            continue
        finally:
            client.close()
        report = response.get("report", {})
        state = "clean" if report.get("clean") else "healed defects"
        print(f"fsck {url} ({report.get('cache_dir', '?')}): {state}, "
              f"{report.get('objects_checked', 0)} objects verified")
        for action in report.get("actions", []):
            print(f"  - {action}")
    return 2 if failures else 0


def cmd_store(args) -> int:
    """``pld store serve`` — run one shard backend in the foreground."""
    if args.store_command == "serve":
        from repro.store.remote import serve_forever
        serve_forever(args.cache_dir, host=args.host, port=args.port)
        return 0
    raise SystemExit(f"unknown store command {args.store_command!r}")


def cmd_edit(args) -> int:
    """The incremental loop demo: warm compile, one edit, delta reload."""
    from repro.core import (IncrementalSession, touch_spec,
                            format_incremental_report)
    from repro.store import ArtifactStore

    app = _app(args.app)
    tracer = _tracer(args)
    if getattr(args, "store", None):
        store = _store_client(args, tracer)
    else:
        store = ArtifactStore(cache_dir=args.cache_dir) \
            if args.cache_dir else ArtifactStore()
    session = IncrementalSession(store=store, effort=args.effort,
                                 tracer=tracer)
    build = session.compile(app.project)
    print(f"baseline: {build.describe()}; "
          f"{len(build.recompiled_pages)} page(s) rebuilt")

    operator = args.operator
    if operator is None:
        # Default to the first HW operator so the demo touches a page.
        hw = [name for name, op in app.project.graph.operators.items()
              if op.target == "HW"]
        if not hw:
            raise SystemExit(f"{args.app} has no HW operators to edit")
        operator = hw[0]
    op = app.project.graph.operators.get(operator)
    if op is None:
        raise SystemExit(f"no operator {operator!r} in {args.app}")

    host = HostProgram(build, tracer=tracer)
    host.configure()
    result = session.apply_edit(operator, touch_spec(op.hls_spec),
                                op.sample_spec)
    session.reload(host, result)
    print(format_incremental_report(result))
    if args.timeline:
        print(host.timeline.summarize())
    session.close()
    _write_trace(tracer, args)
    return 0


def cmd_run(args) -> int:
    app = _app(args.app)
    tracer = _tracer(args)
    engine = _engine(args, tracer)
    try:
        build = _flow(args.flow, args.effort).compile(app.project,
                                                      engine)
    finally:
        close = getattr(engine, "close", None)
        if callable(close):
            close()
    host = HostProgram(build, tracer=tracer)
    outputs = host.run(app.project.sample_inputs)
    for name, tokens in outputs.items():
        preview = tokens[:8]
        suffix = " ..." if len(tokens) > 8 else ""
        print(f"{name}: {len(tokens)} tokens {preview}{suffix}")
    if args.timeline:
        print(host.timeline.summarize())
    _write_trace(tracer, args)
    return 0


def cmd_tables(args) -> int:
    from repro.rosetta import all_apps
    chosen = args.apps.split(",") if args.apps else None
    engine = _engine(args)
    builds: Dict[str, Dict[str, object]] = {}
    try:
        for name, app in all_apps().items():
            if chosen and name not in chosen:
                continue
            builds[name] = {
                "Vitis": VitisFlow(effort=args.effort).compile(
                    app.project, engine),
                "PLD -O3": O3Flow(effort=args.effort).compile(
                    app.project, engine),
                "PLD -O1": O1Flow(effort=args.effort).compile(
                    app.project, engine),
                "PLD -O0": O0Flow(effort=args.effort).compile(
                    app.project, engine),
            }
    finally:
        close = getattr(engine, "close", None)
        if callable(close):
            close()
    print("== compile time (Tab. 2) ==")
    print(format_compile_table(builds))
    print("\n== performance (Tab. 3) ==")
    print(format_performance_table(builds))
    print("\n== area (Tab. 4) ==")
    print(format_area_table(builds))
    return 0


def cmd_trace(args) -> int:
    """Render a saved Chrome trace-event file as a text tree."""
    from repro.trace import format_trace_tree, load_chrome_trace
    try:
        data = load_chrome_trace(args.file)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.file}")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(format_trace_tree(data))
    return 0


def cmd_bench_args(bench_args: list) -> int:
    """Run the tracked benchmark suite (repro.perf.bench)."""
    from repro.perf.bench import main as bench_main
    return bench_main(bench_args)


def cmd_bench(args) -> int:
    return cmd_bench_args(args.bench_args)


def cmd_floorplan(_args) -> int:
    from repro.fabric import FLOORPLAN, XCU50
    print(f"device: {XCU50.name}  {XCU50.luts:,} LUTs  "
          f"{XCU50.brams:,} BRAM18  {XCU50.dsps:,} DSPs  "
          f"{len(XCU50.slrs)} SLRs")
    for page in FLOORPLAN:
        print(f"  page {page.number:2d}  SLR{page.slr}  "
              f"{page.page_type.name}: {page.luts:6,} LUTs  "
              f"{page.brams:3d} B18  {page.dsps:3d} DSP")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="PLD reproduction driver (compile/run/report)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the Rosetta applications")

    compile_p = sub.add_parser("compile", help="compile one app")
    compile_p.add_argument("app")
    compile_p.add_argument("--flow", default="o1",
                           choices=sorted(FLOWS))
    compile_p.add_argument("--effort", type=float, default=0.3)
    compile_p.add_argument("--out", default=None,
                           help="write flow artefacts to this directory")
    compile_p.add_argument("--cache-dir", default=None,
                           help="persistent artifact store; a second "
                                "compile over the same directory "
                                "rebuilds nothing")
    compile_p.add_argument("--store", metavar="URLS", default=None,
                           help="comma-separated shard servers "
                                "(tcp://host:port,...) started with "
                                "'pld store serve'; --cache-dir "
                                "becomes the local fallback tier")
    compile_p.add_argument("--workers", "-j", type=int, default=None,
                           help="run independent build steps on this "
                                "many worker processes (modeled compile "
                                "times are unchanged)")
    compile_p.add_argument("--trace", metavar="FILE", default=None,
                           help="write a Chrome trace-event JSON of "
                                "the build (build steps, cluster node "
                                "lanes, flow phases)")
    compile_p.add_argument("--resume", action="store_true",
                           help="replay the store's build journal from "
                                "an interrupted compile; completed "
                                "steps are skipped (needs --cache-dir)")
    compile_p.add_argument("--deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="wall-clock budget for the compile; on "
                                "expiry the build stops with a "
                                "structured error, finished artefacts "
                                "stay banked, and --resume continues")
    compile_p.add_argument("--manifest", metavar="FILE", default=None,
                           help="write the build manifest (step -> "
                                "content key) as JSON, for diffing")
    # Crash-injection hooks for the resume smoke tests: SIGKILL the
    # process at the Nth cache-miss step.  Deliberately undocumented.
    compile_p.add_argument("--crash-at-step", type=int, default=None,
                           help=argparse.SUPPRESS)
    compile_p.add_argument("--crash-point", default="mid",
                           choices=("begin", "mid", "end"),
                           help=argparse.SUPPRESS)

    edit_p = sub.add_parser(
        "edit", help="demo the incremental edit-compile-reload loop")
    edit_p.add_argument("app")
    edit_p.add_argument("--operator", default=None,
                        help="operator to edit (default: first HW op)")
    edit_p.add_argument("--effort", type=float, default=0.3)
    edit_p.add_argument("--cache-dir", default=None,
                        help="persistent artifact store shared with "
                             "'compile'")
    edit_p.add_argument("--store", metavar="URLS", default=None,
                        help="comma-separated shard servers "
                             "(tcp://host:port,...)")
    edit_p.add_argument("--timeline", action="store_true",
                        help="print the host reload timeline")
    edit_p.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the "
                             "cold compile + warm edit + reload")

    run_p = sub.add_parser("run", help="compile + load + execute one app")
    run_p.add_argument("app")
    run_p.add_argument("--flow", default="o0", choices=sorted(FLOWS))
    run_p.add_argument("--effort", type=float, default=0.3)
    run_p.add_argument("--timeline", action="store_true",
                       help="print the host configuration/run timeline")
    run_p.add_argument("--cache-dir", default=None,
                       help="persistent artifact store shared with "
                            "'compile'")
    run_p.add_argument("--store", metavar="URLS", default=None,
                       help="comma-separated shard servers "
                            "(tcp://host:port,...)")
    run_p.add_argument("--workers", "-j", type=int, default=None,
                       help="run independent build steps on this many "
                            "worker processes")
    run_p.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON of the "
                            "compile + configure + run")

    tables_p = sub.add_parser("tables",
                              help="regenerate Tab. 2/3/4 for apps")
    tables_p.add_argument("--apps", default=None,
                          help="comma-separated subset")
    tables_p.add_argument("--effort", type=float, default=0.3)
    tables_p.add_argument("--cache-dir", default=None,
                          help="persistent artifact store shared with "
                               "'compile'")
    tables_p.add_argument("--workers", "-j", type=int, default=None,
                          help="run independent build steps on this "
                               "many worker processes")

    sub.add_parser("floorplan", help="print the page floorplan")

    fsck_p = sub.add_parser(
        "fsck", help="check and repair an artifact store (orphan tmp "
                     "files, corrupt objects, torn journal tail)")
    fsck_p.add_argument("cache_dir", nargs="?", default=None,
                        help="store directory (the --cache-dir of "
                             "compile/edit)")
    fsck_p.add_argument("--shard", metavar="URLS", default=None,
                        help="run the doctor on remote shard backends "
                             "instead (tcp://host:port,...)")
    fsck_p.add_argument("--fsck-grace", type=float, default=None,
                        metavar="SECONDS",
                        help="age threshold before an orphan .tmp "
                             "staging file is reaped (default 60; "
                             "fast CI passes 0)")

    store_p = sub.add_parser(
        "store", help="remote artifact-store administration")
    store_sub = store_p.add_subparsers(dest="store_command",
                                       required=True)
    serve_p = store_sub.add_parser(
        "serve", help="serve one store directory as a shard backend "
                      "(blocks; ^C stops)")
    serve_p.add_argument("cache_dir",
                         help="store directory this shard owns")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="bind port (0 picks a free one and "
                              "prints it)")

    trace_p = sub.add_parser(
        "trace", help="render a saved --trace file as a text tree")
    trace_p.add_argument("file", help="Chrome trace-event JSON written "
                                      "by a --trace run")

    bench_p = sub.add_parser(
        "bench", help="run the tracked benchmark suite "
        "(see 'bench --help' via repro.perf.bench)")
    bench_p.add_argument("bench_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to repro.perf.bench "
                              "(--quick, --suite, --profile, --check, "
                              "--output, --repeats)")
    return parser


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # Forward everything after 'bench' verbatim (argparse REMAINDER
        # refuses leading optionals like --quick).
        return cmd_bench_args(argv[1:])
    args = build_parser().parse_args(argv)
    handler = {
        "apps": cmd_apps,
        "compile": cmd_compile,
        "edit": cmd_edit,
        "run": cmd_run,
        "tables": cmd_tables,
        "floorplan": cmd_floorplan,
        "bench": cmd_bench,
        "trace": cmd_trace,
        "fsck": cmd_fsck,
        "store": cmd_store,
    }[args.command]
    try:
        return handler(args)
    except DeadlineExceeded as exc:
        # A deadline expiry is not a build failure: finished artefacts
        # are banked in the store, so tell the developer how to go on.
        print(f"error: DeadlineExceeded: {exc}", file=sys.stderr)
        print(f"  completed {len(exc.completed)} step(s) before the "
              f"{exc.seconds:g}s budget ran out "
              f"({exc.elapsed:.2f}s elapsed)", file=sys.stderr)
        if exc.pending:
            preview = ", ".join(exc.pending[:4])
            more = " ..." if len(exc.pending) > 4 else ""
            print(f"  pending: {preview}{more}", file=sys.stderr)
        print("  rerun with --resume (same --cache-dir) to continue "
              "from the journal", file=sys.stderr)
        return 2
    except PLDError as exc:
        # Toolflow failures exit nonzero with a one-line diagnostic (and
        # the full structured report for deadlocks) instead of a
        # traceback — the pld driver is a build tool, not a library.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        if isinstance(exc, DeadlockError):
            from repro.core.reports import format_deadlock_report
            print(format_deadlock_report(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
