"""Crash safety and supervision for the toolflow (``repro.resilience``).

The paper's incremental loop only works if a ~20-minute -O1 compile
survives the realities of a developer workstation: Ctrl-C, OOM kills,
lost nodes, runaway steps.  This package is the supervision layer that
makes every compile crash-safe and time-bounded:

* :class:`BuildJournal` — a write-ahead journal next to the artifact
  store; ``pld compile --resume`` replays it and skips completed steps
  (the store's content keys make the resumed manifest bit-identical to
  an uninterrupted build);
* :class:`Deadline` — a wall-clock budget threaded through the engine,
  the flows and the cluster; expiry raises a structured
  :class:`repro.errors.DeadlineExceeded` carrying the partial results;
* :class:`CircuitBreaker` — fast-fails deterministically-crashing build
  steps straight to the -O0 degradation path;
* :class:`StoreLock` — the cross-process advisory lock serializing
  store maintenance;
* :func:`fsck_store` — the ``pld fsck`` doctor: reaps orphan temp
  files, re-hashes and heals corrupt objects, repairs the journal.

Hedged retries for straggler cluster jobs live in
:class:`repro.core.cluster.CompileCluster` (``hedge_quantile``), and
the crash-injection harness in :class:`repro.faults.CrashPlan`.
"""

from repro.resilience.breaker import (
    CircuitBreaker,
    DEFAULT_FAILURE_THRESHOLD,
)
from repro.resilience.deadline import Deadline
from repro.resilience.fsck import (
    FsckReport,
    TMP_GRACE_SECONDS,
    fsck_store,
    stale_tmps,
)
from repro.resilience.journal import (
    BuildJournal,
    JOURNAL_NAME,
    completed_steps,
    in_flight_steps,
    journal_path,
    load_journal,
    repair_journal,
)
from repro.resilience.lock import LOCK_NAME, StoreLock

__all__ = [
    "BuildJournal",
    "CircuitBreaker",
    "DEFAULT_FAILURE_THRESHOLD",
    "Deadline",
    "FsckReport",
    "JOURNAL_NAME",
    "LOCK_NAME",
    "StoreLock",
    "TMP_GRACE_SECONDS",
    "completed_steps",
    "fsck_store",
    "stale_tmps",
    "in_flight_steps",
    "journal_path",
    "load_journal",
    "repair_journal",
]
