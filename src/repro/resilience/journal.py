"""The write-ahead build journal (crash-safe resumable compiles).

A :class:`BuildJournal` lives next to the artifact store
(``cache_dir/journal.jsonl``) and records what the build engine is
doing as it does it: a ``begin`` line before a builder runs, an ``end``
line after its artefact is safely in the store, a ``fail`` line when a
builder raises.  Each line is one JSON object, appended with an fsync,
so a SIGKILL at any instant leaves at worst one torn final line — which
:func:`load_journal` detects and ignores (and ``pld fsck`` truncates).

Resume semantics are deliberately thin: *correctness* comes from the
content-addressed store (a completed step's key hits the cache whether
or not the journal survived); the journal supplies the *bookkeeping* —
which steps a resumed build may skip (``resume-skip`` trace instants,
the ``resumed`` list in :class:`~repro.core.flows.FlowBuild`), whether
the previous invocation died mid-build, and the in-flight step set
``pld fsck`` uses to explain orphan temp files.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable, Dict, List, Optional, Tuple

#: Journal file name inside the store's ``cache_dir``.
JOURNAL_NAME = "journal.jsonl"

#: Journal format version (first line of every journal).
JOURNAL_VERSION = 1


def journal_path(cache_dir) -> pathlib.Path:
    return pathlib.Path(cache_dir) / JOURNAL_NAME


def load_journal(path) -> Tuple[List[Dict[str, object]], int]:
    """Parse a journal file, tolerating a torn tail.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the byte
    offset of the end of the last fully-written line — everything past
    it (a line without a newline, or one that fails to parse) is the
    torn tail a crash left behind and is simply not returned.
    """
    path = pathlib.Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return [], 0
    records: List[Dict[str, object]] = []
    good = 0
    cursor = 0
    while cursor < len(data):
        newline = data.find(b"\n", cursor)
        if newline < 0:
            break                      # no terminator: torn tail
        line = data[cursor:newline]
        try:
            record = json.loads(line.decode())
            if not isinstance(record, dict):
                break
        except (UnicodeDecodeError, json.JSONDecodeError):
            break                      # corrupt line: stop replaying here
        records.append(record)
        cursor = newline + 1
        good = cursor
    return records, good


def completed_steps(records: List[Dict[str, object]]) -> Dict[str, str]:
    """``step name -> content key`` of every journaled completion."""
    done: Dict[str, str] = {}
    for record in records:
        if record.get("t") == "end":
            done[str(record.get("step"))] = str(record.get("key"))
        elif record.get("t") == "fail":
            done.pop(str(record.get("step")), None)
    return done


def in_flight_steps(records: List[Dict[str, object]]) -> Dict[str, str]:
    """Steps with a ``begin`` but no matching ``end``/``fail`` yet."""
    open_steps: Dict[str, str] = {}
    for record in records:
        step = str(record.get("step"))
        if record.get("t") == "begin":
            open_steps[step] = str(record.get("key"))
        elif record.get("t") in ("end", "fail"):
            open_steps.pop(step, None)
    return open_steps


def repair_journal(path, key_exists: Optional[Callable[[str], bool]] = None
                   ) -> Tuple[int, int]:
    """Heal a journal in place: truncate the torn tail, drop stale ends.

    ``key_exists`` (when given) maps a content key to whether the store
    still holds that object; ``end`` records whose artefact is gone are
    dropped so a resume never skips a step it cannot actually reuse.
    Returns ``(truncated_bytes, dropped_records)``.
    """
    path = pathlib.Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return 0, 0
    records, good = load_journal(path)
    truncated = size - good
    dropped = 0
    kept = records
    if key_exists is not None:
        kept = []
        for record in records:
            if record.get("t") == "end" \
                    and not key_exists(str(record.get("key"))):
                dropped += 1
                continue
            kept.append(record)
    if truncated or dropped:
        tmp = path.with_suffix(".jsonl.rewrite")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    return truncated, dropped


class BuildJournal:
    """Append-only write-ahead journal for one artifact-store directory.

    Args:
        cache_dir: the store directory the journal sits in (created if
            missing).
        resume: replay the existing journal — :attr:`completed` then
            names the steps a resumed build may skip, and the engine
            emits ``resume-skip`` instants for them.  Without ``resume``
            the journal is truncated and a fresh build record starts.
    """

    def __init__(self, cache_dir, resume: bool = False):
        self.path = journal_path(cache_dir)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.resuming = resume
        self.completed: Dict[str, str] = {}
        self.interrupted = False
        if resume:
            records, good = load_journal(self.path)
            self.completed = completed_steps(records)
            began = [r for r in records if r.get("t") == "build-begin"]
            ended = [r for r in records if r.get("t") == "build-end"]
            self.interrupted = len(began) > len(ended)
            # Drop the torn tail so our appends start on a line boundary.
            try:
                if good < self.path.stat().st_size:
                    with open(self.path, "rb+") as handle:
                        handle.truncate(good)
            except OSError:
                pass
        else:
            self.path.write_text("")
        self._handle = open(self.path, "a", encoding="utf-8")
        #: Optional post-append hook.  The compile service points this
        #: at its session-meta publication when a shard fleet is
        #: attached, so every fsynced record is also visible to peer
        #: daemons — a SIGKILL mid-build then leaves the *fleet*, not
        #: just the local disk, holding the steps a peer can resume.
        self.publish: Optional[Callable[[], None]] = None

    # -- record appends ----------------------------------------------------

    def _append(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if self.publish is not None:
            try:
                self.publish()
            except Exception:
                pass          # publication is best-effort bookkeeping

    def begin_build(self, flow: str = "", project: str = "") -> None:
        self._append({"t": "build-begin", "v": JOURNAL_VERSION,
                      "flow": flow, "project": project})

    def end_build(self) -> None:
        self._append({"t": "build-end"})

    def begin_step(self, step: str, key: str) -> None:
        self._append({"t": "begin", "step": step, "key": key})

    def end_step(self, step: str, key: str) -> None:
        self._append({"t": "end", "step": step, "key": key})
        self.completed[step] = key

    def fail_step(self, step: str, key: str, error: str = "") -> None:
        self._append({"t": "fail", "step": step, "key": key,
                      "error": error})
        self.completed.pop(step, None)

    # -- resume queries ----------------------------------------------------

    def can_skip(self, step: str, key: str) -> bool:
        """True when a resumed build already completed this exact step."""
        return self.resuming and self.completed.get(step) == key

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BuildJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        mode = "resume" if self.resuming else "fresh"
        return (f"BuildJournal({str(self.path)!r}, {mode}, "
                f"{len(self.completed)} completed)")
