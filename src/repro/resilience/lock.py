"""Cross-process advisory locking for a shared artifact store.

Two ``pld`` processes pointed at one ``cache_dir`` are safe for plain
get/put traffic by construction (writes publish atomically via
``os.replace`` after an fsync, reads degrade torn or deleted files to
misses), but *maintenance* — ``prune`` sweeping unreferenced objects,
``pld fsck`` healing the directory — must not race a concurrent sweep.
:class:`StoreLock` is a small ``fcntl.flock`` advisory lock on
``cache_dir/store.lock``: maintenance takes it exclusively, and any
process that wants to keep the store stable under its feet may hold it
shared.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op —
the store's atomic-publish invariants still hold; only concurrent
maintenance loses mutual exclusion.
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Optional

from repro.errors import StoreError

try:                                   # POSIX only; no-op elsewhere
    import fcntl
except ImportError:                    # pragma: no cover - non-POSIX
    fcntl = None

#: Lock file name inside the store's ``cache_dir``.
LOCK_NAME = "store.lock"

#: Default seconds to wait for a contended lock before giving up.
DEFAULT_TIMEOUT = 30.0


class StoreLock:
    """An advisory file lock over one store directory (context manager).

    Args:
        cache_dir: the store directory; the lock file is created inside.
        exclusive: exclusive (maintenance) vs. shared (reader) mode.
        timeout: seconds to wait for a contended lock; raises
            :class:`StoreError` when it cannot be acquired in time.
    """

    def __init__(self, cache_dir, exclusive: bool = True,
                 timeout: float = DEFAULT_TIMEOUT):
        self.path = pathlib.Path(cache_dir) / LOCK_NAME
        self.exclusive = exclusive
        self.timeout = timeout
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "StoreLock":
        if self._fd is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:              # pragma: no cover - non-POSIX
            self._fd = fd
            return self
        flag = fcntl.LOCK_EX if self.exclusive else fcntl.LOCK_SH
        give_up = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(fd, flag | fcntl.LOCK_NB)
                self._fd = fd
                return self
            except OSError:
                if time.monotonic() >= give_up:
                    os.close(fd)
                    raise StoreError(
                        f"could not acquire store lock {self.path} "
                        f"within {self.timeout:.0f}s (another pld "
                        f"process is doing store maintenance)")
                time.sleep(0.02)

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        mode = "exclusive" if self.exclusive else "shared"
        state = "held" if self.held else "free"
        return f"StoreLock({str(self.path)!r}, {mode}, {state})"
