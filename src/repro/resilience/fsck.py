"""``pld fsck`` — the artifact-store doctor.

A store directory can be left messy by a crash: orphan ``.tmp`` files
from a process killed between ``mkstemp`` and the atomic publish, a
torn final journal line from a SIGKILL mid-append, an object truncated
by a full disk, a stale journal completion whose object a prune already
swept.  None of these are *dangerous* — reads re-hash and degrade to
misses, resume only skips what the store actually holds — but they
accumulate, and a store shared by several processes deserves a doctor.

:func:`fsck_store` takes the store's exclusive advisory lock, then:

* reaps every orphan ``.tmp`` file under ``objects/``;
* re-reads and re-hashes every ``.art`` object, removing any that fail
  the integrity check (the content-addressed heal: the next build
  simply rebuilds that key);
* repairs the journal — truncates the torn tail and drops completion
  records whose object no longer exists, so ``--resume`` never skips a
  step it cannot reuse.

Running it twice is a no-op the second time; that property is tested.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import List

from repro.resilience.journal import journal_path, repair_journal
from repro.resilience.lock import StoreLock

#: Minimum age before a ``.tmp`` staging file counts as orphaned.  A
#: *live* writer in another process sits between ``mkstemp`` and
#: ``os.replace`` for milliseconds; anything this old is the residue of
#: a killed process, not an in-flight publish.
TMP_GRACE_SECONDS = 60.0


def stale_tmps(objects_dir, grace: float = TMP_GRACE_SECONDS):
    """Orphaned ``.tmp`` staging files older than the grace period."""
    cutoff = time.time() - grace
    for tmp in sorted(pathlib.Path(objects_dir).glob("*/*.tmp")):
        try:
            if tmp.stat().st_mtime <= cutoff:
                yield tmp
        except OSError:
            continue                   # vanished underfoot


@dataclass
class FsckReport:
    """What one fsck pass found and did."""

    cache_dir: str = ""
    objects_checked: int = 0
    orphan_tmps_removed: int = 0
    corrupt_objects_removed: int = 0
    journal_bytes_truncated: int = 0
    journal_entries_dropped: int = 0
    #: Human-readable log of every repair action, in order.
    actions: List[str] = field(default_factory=list)

    @property
    def defects_found(self) -> int:
        return (self.orphan_tmps_removed + self.corrupt_objects_removed
                + self.journal_entries_dropped
                + (1 if self.journal_bytes_truncated else 0))

    @property
    def clean(self) -> bool:
        """True when the pass found nothing to repair (a no-op run)."""
        return self.defects_found == 0

    def summary(self) -> str:
        if self.clean:
            return (f"fsck {self.cache_dir}: clean "
                    f"({self.objects_checked} objects verified)")
        lines = [f"fsck {self.cache_dir}: "
                 f"{self.objects_checked} objects verified, "
                 f"{self.defects_found} defect(s) healed"]
        lines += [f"  - {action}" for action in self.actions]
        return "\n".join(lines)


def fsck_store(cache_dir, lock_timeout: float = 30.0,
               grace: float = TMP_GRACE_SECONDS) -> FsckReport:
    """Check and heal one store directory (under the exclusive lock).

    Safe to run at any time — concurrent builds in *other* processes
    wait on the advisory lock for maintenance, and every repair either
    deletes something unreferenced or rewrites the journal atomically.

    ``grace`` is the orphan-``.tmp`` age threshold (seconds): staging
    files younger than this survive the sweep as presumed in-flight
    writes.  The CLI exposes it as ``pld fsck --fsck-grace``; tests and
    fast CI pass 0 instead of spoofing mtimes.
    """
    # Imported lazily: repro.store pulls in repro.core.build, and fsck
    # must stay importable from the bare resilience package.
    from repro.errors import StoreError
    from repro.store.serial import decode_artifact

    root = pathlib.Path(cache_dir)
    report = FsckReport(cache_dir=str(root))
    if not root.exists():
        raise StoreError(f"no such store directory: {root}")
    objects = root / "objects"

    with StoreLock(root, exclusive=True, timeout=lock_timeout):
        # 1. Orphan temp files: a crash between mkstemp and os.replace.
        # Only *stale* staging files are reaped — a concurrent writer's
        # in-flight tmp (milliseconds old) must survive the sweep.
        if objects.is_dir():
            for tmp in stale_tmps(objects, grace=grace):
                try:
                    tmp.unlink()
                    report.orphan_tmps_removed += 1
                    report.actions.append(
                        f"removed orphan temp file {tmp.name}")
                except OSError:
                    pass

            # 2. Object integrity: re-hash every artefact.
            for path in sorted(objects.glob("*/*.art")):
                report.objects_checked += 1
                try:
                    data = path.read_bytes()
                    decode_artifact(data, expect_key=path.stem)
                except StoreError as exc:
                    try:
                        path.unlink()
                        report.corrupt_objects_removed += 1
                        report.actions.append(
                            f"removed corrupt object {path.stem} "
                            f"({exc})")
                    except OSError:
                        pass
                except OSError:
                    continue           # vanished underfoot: nothing to do

        # 3. Journal: truncate the torn tail, drop stale completions.
        jpath = journal_path(root)
        if jpath.exists():
            def key_exists(key: str) -> bool:
                return (objects / key[:2] / f"{key}.art").exists()

            truncated, dropped = repair_journal(jpath, key_exists)
            report.journal_bytes_truncated = truncated
            report.journal_entries_dropped = dropped
            if truncated:
                report.actions.append(
                    f"truncated {truncated} byte(s) of torn journal tail")
            if dropped:
                report.actions.append(
                    f"dropped {dropped} journal completion(s) whose "
                    f"object is gone")
    return report
