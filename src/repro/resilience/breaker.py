"""Per-step circuit breakers for the build engine.

A step whose builder crashes once is retried (the parallel engine's
in-process retry, the cluster's backoff ladder); a step that crashes
*every time* is deterministic breakage, and burning the full ladder on
each compile just delays the developer.  :class:`CircuitBreaker` counts
consecutive builder failures per step name; once a step reaches the
threshold its breaker *opens* and the engine raises
:class:`repro.errors.CircuitOpenError` instead of running the builder —
the -O1 flow then routes the operator straight to the -O0 softcore
degradation path (same fallback as an exhausted cluster job).

A later success (e.g. after the developer fixes the operator and the
content key changes) resets the count, closing the breaker.

The same class guards *shards* of the remote artifact store
(:mod:`repro.store.remote`): there the "step" is a shard address, and
an optional ``cooldown_seconds`` turns the breaker into a quarantine
with **half-open probes** — once the cooldown after the last failure
has passed, :meth:`is_open` admits exactly one trial request; a
success closes the breaker, another failure re-arms the cooldown.
Without a cooldown (the build-engine default) behaviour is unchanged:
open stays open until a success is recorded.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.errors import CircuitOpenError

#: Consecutive failures after which a step's breaker opens.
DEFAULT_FAILURE_THRESHOLD = 3


class CircuitBreaker:
    """Counts consecutive failures per step name; opens at a threshold.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        cooldown_seconds: when set, an open breaker *half-opens* this
            many seconds after its last recorded failure, admitting one
            probe request; None (the default) keeps an open breaker
            open until a success is recorded.
        clock: injectable monotonic clock (tests); defaults to
            :func:`time.monotonic`.
    """

    def __init__(self, failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
                 cooldown_seconds: Optional[float] = None, clock=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds is not None and cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock if clock is not None else time.monotonic
        # One breaker is shared by the engine thread, hedge workers
        # and the store reconciler; the half-open admission in
        # is_open() is check-then-act, so all state lives under a lock.
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._last_failure: Dict[str, float] = {}
        self._probing: Dict[str, bool] = {}

    def record_failure(self, step: str) -> int:
        """Count one builder failure; returns the new count."""
        with self._lock:
            self._failures[step] = self._failures.get(step, 0) + 1
            self._last_failure[step] = self._clock()
            self._probing.pop(step, None)
            return self._failures[step]

    def record_success(self, step: str) -> None:
        """A completed build closes the step's breaker."""
        with self._lock:
            self._failures.pop(step, None)
            self._last_failure.pop(step, None)
            self._probing.pop(step, None)

    def failures(self, step: str) -> int:
        with self._lock:
            return self._failures.get(step, 0)

    def is_open(self, step: str) -> bool:
        with self._lock:
            if self._failures.get(step, 0) < self.failure_threshold:
                return False
            if self.cooldown_seconds is None:
                return True
            # Quarantine mode: after the cooldown, half-open — admit
            # one probe request (is_open -> False once); further
            # requests stay blocked until the probe's outcome is
            # recorded.
            if self._probing.get(step, False):
                return True
            last = self._last_failure.get(step, 0.0)
            if self._clock() - last >= self.cooldown_seconds:
                self._probing[step] = True
                return False
            return True

    def half_open(self, step: str) -> bool:
        """True while one probe request is in flight for ``step``."""
        with self._lock:
            return self._probing.get(step, False)

    def open_steps(self) -> List[str]:
        with self._lock:
            return sorted(step for step, count in self._failures.items()
                          if count >= self.failure_threshold)

    def check(self, step: str) -> None:
        """Raise :class:`CircuitOpenError` when the step's breaker is open."""
        with self._lock:
            count = self._failures.get(step, 0)
        if count >= self.failure_threshold:
            raise CircuitOpenError(
                f"step {step!r} fast-failed: circuit breaker open after "
                f"{count} consecutive builder failures",
                step=step, failures=count)

    def __repr__(self) -> str:
        return (f"CircuitBreaker(threshold={self.failure_threshold}, "
                f"open={self.open_steps()})")
