"""Per-step circuit breakers for the build engine.

A step whose builder crashes once is retried (the parallel engine's
in-process retry, the cluster's backoff ladder); a step that crashes
*every time* is deterministic breakage, and burning the full ladder on
each compile just delays the developer.  :class:`CircuitBreaker` counts
consecutive builder failures per step name; once a step reaches the
threshold its breaker *opens* and the engine raises
:class:`repro.errors.CircuitOpenError` instead of running the builder —
the -O1 flow then routes the operator straight to the -O0 softcore
degradation path (same fallback as an exhausted cluster job).

A later success (e.g. after the developer fixes the operator and the
content key changes) resets the count, closing the breaker.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CircuitOpenError

#: Consecutive failures after which a step's breaker opens.
DEFAULT_FAILURE_THRESHOLD = 3


class CircuitBreaker:
    """Counts consecutive failures per step name; opens at a threshold."""

    def __init__(self, failure_threshold: int = DEFAULT_FAILURE_THRESHOLD):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self._failures: Dict[str, int] = {}

    def record_failure(self, step: str) -> int:
        """Count one builder failure; returns the new count."""
        self._failures[step] = self._failures.get(step, 0) + 1
        return self._failures[step]

    def record_success(self, step: str) -> None:
        """A completed build closes the step's breaker."""
        self._failures.pop(step, None)

    def failures(self, step: str) -> int:
        return self._failures.get(step, 0)

    def is_open(self, step: str) -> bool:
        return self._failures.get(step, 0) >= self.failure_threshold

    def open_steps(self) -> List[str]:
        return sorted(step for step, count in self._failures.items()
                      if count >= self.failure_threshold)

    def check(self, step: str) -> None:
        """Raise :class:`CircuitOpenError` when the step's breaker is open."""
        count = self._failures.get(step, 0)
        if count >= self.failure_threshold:
            raise CircuitOpenError(
                f"step {step!r} fast-failed: circuit breaker open after "
                f"{count} consecutive builder failures",
                step=step, failures=count)

    def __repr__(self) -> str:
        return (f"CircuitBreaker(threshold={self.failure_threshold}, "
                f"open={self.open_steps()})")
