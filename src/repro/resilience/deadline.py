"""Wall-clock deadline budgets for compiles.

A :class:`Deadline` is a monotonic-clock budget threaded through the
build engine, the flows and the compile cluster.  Checks are explicit
and cheap (one ``perf_counter`` read); when the budget is gone the
checker raises :class:`repro.errors.DeadlineExceeded` *carrying the
partial results* — what already completed (and therefore sits in the
artifact store) and what was pending — so the CLI can tell the user
exactly what a ``--resume`` will skip.

Checks sit *between* units of work, never inside them: a builder that
has started is allowed to finish (its artefact is then banked in the
store), so an expired deadline loses at most the in-flight step.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget of ``seconds`` starting at construction.

    Args:
        seconds: total budget; must be positive.
        clock: injectable time source (tests pass a fake; defaults to
            :func:`time.monotonic`).
    """

    def __init__(self, seconds: float, clock=None):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock if clock is not None else time.monotonic
        self._start = self._clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str, completed: Optional[List[str]] = None,
              pending: Optional[List[str]] = None) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent.

        ``label`` names the unit of work about to run; ``completed`` and
        ``pending`` ride on the exception as the partial results.
        """
        if not self.expired:
            return
        elapsed = self.elapsed()
        raise DeadlineExceeded(
            f"deadline of {self.seconds:g}s expired after "
            f"{elapsed:.2f}s, before {label}",
            seconds=self.seconds, elapsed=elapsed,
            completed=completed, pending=pending or [label])

    def __repr__(self) -> str:
        return (f"Deadline({self.seconds:.1f}s, "
                f"{max(0.0, self.remaining()):.1f}s remaining)")
