"""Cycle-level simulation of the deflection-routed BFT.

Switches are bufferless (Hoplite-style): every packet arriving at a
switch must leave the same cycle.  Output assignment is age-ordered —
the oldest packet gets its preferred direction, younger packets deflect
to any legal free output — which provides the livelock resistance of
CHIPPER-style designs [18, 46].  Down-links to leaves only carry packets
for that leaf's subtree when possible; a packet deflected onto a wrong
leaf bounces: the leaf interface re-injects it ahead of new traffic.

The simulator measures delivered-packet latency and sustained
throughput, which the -O1 performance model uses as the effective
link/leaf bandwidths of the overlay.

The inner loop is table-driven: switch candidate outputs, link
destinations and arrival buffers are precomputed once per topology, so
a cycle is a couple of dict lookups per in-flight packet instead of
per-cycle :class:`SwitchId` construction and routing geometry.  The
tables are pure caches — results are bit-identical to the naive
geometry walk, which the equivalence tests assert.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlockError, NoCError
from repro.noc.bft import BFTopology, SwitchId
from repro.noc.leaf import LeafInterface
from repro.noc.packet import AckPacket, DataPacket, Packet
from repro.trace import NULL_TRACER

#: Output slot identifiers: ("up", k) | ("down", child_side)
_UP = "up"
_DOWN = "down"

_AGE = operator.attrgetter("age")


@dataclass
class DeliveryRecord:
    payload: int
    latency: int
    hops: int


class NetworkSimulator:
    """Simulates one overlay network with attached leaf interfaces.

    Args:
        topology: the BFT to simulate (single up-link).
        leaves: leaf number -> interface; missing leaves get bare ones.
        faults: optional :class:`repro.faults.NoCFaultInjector`; each
            injected data/ack flit may then be dropped or have a payload
            bit flipped.  Pair with ``reliable=True`` leaf interfaces so
            the CRC/retransmission layer recovers the loss.
        watchdog_cycles: with pending work but zero deliveries for this
            many cycles, the simulator raises :class:`DeadlockError`
            carrying a structured diagnostic (blocked leaves, outbox and
            reorder occupancies, in-flight packets) instead of spinning
            to the cycle limit.
        tracer: optional :class:`repro.trace.Tracer`; retransmission
            bursts and the watchdog firing then appear as instant
            events on the ``noc`` lane (with the cycle they happened
            at), so a flaky network is visible in the same trace as the
            build that ran over it.
    """

    def __init__(self, topology: BFTopology,
                 leaves: Optional[Dict[int, LeafInterface]] = None,
                 faults=None, watchdog_cycles: int = 50_000,
                 tracer=None):
        if topology.up_links != 1:
            raise NoCError(
                "the cycle simulator models the paper's modest single "
                "up-link network; wider fat trees are handled by the "
                "analytic NoCPerformanceModel")
        self.topology = topology
        self.leaves: Dict[int, LeafInterface] = dict(leaves or {})
        for leaf, iface in self.leaves.items():
            if iface.leaf != leaf:
                raise NoCError(
                    f"leaf interface {iface.leaf} attached at {leaf}")
        # Padding leaves (tree rounded to a power of two) get bare
        # interfaces so mis-deflected packets bounce instead of dying.
        for leaf in range(topology.size):
            if leaf not in self.leaves:
                self.leaves[leaf] = LeafInterface(leaf, 1)
        # Link registers: packets in flight, written for the *next* cycle.
        # Keyed by interned slot id; _slot_keys maps an id back to its
        # (node, direction, lane) — node is a SwitchId for switch
        # outputs, an int for leaf up-links.
        self._in_flight: Dict[int, Packet] = {}
        self.cycle = 0
        self.delivered: List[DeliveryRecord] = []
        self.total_deflections = 0
        self.faults = faults
        self.watchdog_cycles = watchdog_cycles
        self.faults_dropped = 0
        self.faults_corrupted = 0
        self._injection_index = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._retrans_seen = 0
        self._build_tables()

    def attach(self, iface: LeafInterface) -> None:
        self.leaves[iface.leaf] = iface
        self._build_tables()

    # -- routing tables ------------------------------------------------------

    def _build_tables(self) -> None:
        """Precompute the per-topology constants the hot loop uses.

        * one reusable arrival buffer per switch (cleared each cycle
          instead of rebuilding a ``{switch: []}`` dict);
        * every output slot ``(node, direction, lane)`` interned to a
          small int id, so the per-cycle ``_in_flight``/``taken`` set
          operations hash ints instead of SwitchId-bearing tuples;
        * per-switch candidate-slot tuples in deflection preference
          order, and a link-destination table mapping every slot id to
          either the arrival buffer it feeds or the leaf it delivers to.
        """
        topo = self.topology
        switches = list(topo.switches())
        buffers: Dict[SwitchId, List[Packet]] = {s: [] for s in switches}
        slot_keys: List[Tuple] = []      # id -> (node, direction, lane)

        def intern(key: Tuple) -> int:
            slot_keys.append(key)
            return len(slot_keys) - 1

        # (buffer, switch, lo, mid, hi, cand_left, cand_right, cand_out)
        route_entries = []
        for s in switches:
            lo, hi = topo.subtree_range(s)
            span = 1 << (s.level - 1)
            ups: Tuple[int, ...] = ()
            if s.level < topo.levels:
                ups = tuple(intern((s, _UP, lane))
                            for lane in range(topo.up_links))
            down = (intern((s, _DOWN, 0)), intern((s, _DOWN, 1)))
            route_entries.append((
                buffers[s], s, lo, lo + span, hi,
                down + ups,                    # covered, left child first
                (down[1], down[0]) + ups,      # covered, right child first
                ups + down,                    # not covered: climb
            ))
        leaf_slots = [intern((leaf, _UP, 0))
                      for leaf in range(topo.size)]
        # slot id -> (deliver_to_leaf?, arrival-buffer-or-leaf_no)
        dest: List[Tuple] = [None] * len(slot_keys)
        for sid, (node, direction, lane) in enumerate(slot_keys):
            if direction == _UP:
                if isinstance(node, int):            # leaf -> its parent
                    dest[sid] = (False, buffers[topo.leaf_parent(node)])
                else:                                 # switch -> parent
                    dest[sid] = (False, buffers[topo.parent(node)])
            elif node.level == 1:                     # down to a leaf
                dest[sid] = (True, node.index * 2 + lane)
            else:
                dest[sid] = (False, buffers[topo.children(node)[lane]])
        self._route_entries = route_entries
        self._dest = dest
        self._slot_keys = slot_keys
        self._leaf_entries = [(leaf, iface, leaf_slots[leaf])
                              for leaf, iface in self.leaves.items()]
        self._ifaces = tuple(self.leaves.values())
        self._reliable_ifaces = tuple(
            iface for iface in self.leaves.values() if iface.reliable)

    # -- one simulation step -----------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle."""
        next_flight: Dict[int, Packet] = {}
        dest = self._dest

        # Gather arrivals per switch: packets on child up-links and on
        # the parent's down-link toward this switch; down-links out of
        # level 1 deliver (or bounce) at their leaf.
        for key, packet in self._in_flight.items():
            to_leaf, target = dest[key]
            if to_leaf:
                self._deliver(packet, target)
            else:
                target.append(packet)

        # Route each switch's arrivals, oldest packet first.
        deflections = 0
        for entry in self._route_entries:
            packets = entry[0]
            if not packets:
                continue
            for packet in packets:
                packet.age += 1
                packet.hops += 1
            packets.sort(key=_AGE, reverse=True)
            taken: set = set()
            lo, mid, hi = entry[2], entry[3], entry[4]
            for packet in packets:
                d = packet.dest_leaf
                if lo <= d < hi:
                    candidates = entry[5] if d < mid else entry[6]
                else:
                    candidates = entry[7]
                for slot in candidates:
                    if slot not in taken and slot not in next_flight:
                        break
                else:
                    raise NoCError(
                        f"{entry[1]}: no free output — switch radix "
                        f"violated")
                if slot is not candidates[0]:
                    deflections += 1
                taken.add(slot)
                next_flight[slot] = packet
            del packets[:]
        self.total_deflections += deflections

        # Leaf injections: a leaf's up-link is free if no switch wrote it
        # (switches never write leaf up-links), so inject when available.
        cycle = self.cycle
        faults = self.faults
        for leaf_no, iface, key in self._leaf_entries:
            if key in next_flight:
                continue
            packet = iface.pop_injection()
            if packet is not None:
                if packet.injected_at < 0:
                    packet.injected_at = cycle
                iface.note_transmitted(packet, cycle)
                if faults is not None:
                    packet = self._inject_faults(packet, leaf_no)
                if packet is not None:
                    next_flight[key] = packet

        self._in_flight = next_flight
        self.cycle = cycle + 1

        # Drive the reliability layer's ack timeouts: overdue unacked
        # flits re-enter their leaf's outbox for the next cycles.
        for iface in self._reliable_ifaces:
            iface.service_retransmissions(self.cycle)
        if self._reliable_ifaces and self.tracer.enabled:
            total = sum(iface.retransmissions
                        for iface in self._reliable_ifaces)
            if total != self._retrans_seen:
                self.tracer.instant(
                    "noc:retransmit", category="noc", lane="noc",
                    cycle=self.cycle, flits=total - self._retrans_seen)
                self._retrans_seen = total

    def _inject_faults(self, packet: Packet,
                       leaf_no: int) -> Optional[Packet]:
        """Apply the fault plan to one injected flit (None = dropped)."""
        if self.faults is None \
                or not isinstance(packet, (DataPacket, AckPacket)):
            return packet
        index = self._injection_index
        self._injection_index += 1
        target = (f"leaf{leaf_no}->leaf{packet.dest_leaf}"
                  f":port{packet.dest_port}")
        outcome = self.faults.on_injection(index, target)
        if outcome == "drop":
            self.faults_dropped += 1
            return None
        if outcome == "corrupt":
            # Flip one payload bit without fixing the CRC: the receiver
            # detects the mismatch and treats the flit as lost.
            packet.payload ^= self.faults.corruption_mask(index)
            self.faults_corrupted += 1
        return packet

    def _deliver(self, packet: Packet, leaf_no: int) -> None:
        iface = self.leaves[leaf_no]
        accepted_before = iface.received
        bounced = iface.deliver(packet)
        if bounced is not None:
            iface.push_front(bounced)
        elif (not isinstance(packet, AckPacket)
              and iface.received > accepted_before):
            # Acks and discarded flits (bad CRC, duplicates) are not
            # application deliveries and stay out of the latency stats.
            self.delivered.append(DeliveryRecord(
                packet.payload, self.cycle - packet.injected_at,
                packet.hops))

    # -- convenience drivers ------------------------------------------------

    def run(self, max_cycles: int = 100_000) -> int:
        """Step until the network drains or the cycle limit hits.

        Returns the cycle count at quiescence.  Reliable leaves are not
        quiescent while they still hold unacknowledged flits: the run
        keeps stepping so retransmission timers can fire.  A watchdog
        turns pure stagnation (pending work, zero accepted deliveries
        for ``watchdog_cycles``) into a :class:`DeadlockError` with a
        structured diagnostic instead of an opaque cycle-limit abort.
        """
        idle = 0
        last_progress_cycle = 0
        last_accepted = self._accepted_total()
        while idle < 3:
            if self.cycle >= max_cycles:
                raise NoCError(
                    f"network did not drain within {max_cycles} cycles")
            busy = bool(self._in_flight)
            if not busy:
                for iface in self._ifaces:
                    if iface.outbox or (iface.reliable
                                        and iface.has_unacked()):
                        busy = True
                        break
            self.step()
            idle = 0 if busy else idle + 1
            accepted = self._accepted_total()
            if accepted != last_accepted:
                last_accepted = accepted
                last_progress_cycle = self.cycle
            elif (busy and self.watchdog_cycles > 0
                    and self.cycle - last_progress_cycle
                    >= self.watchdog_cycles):
                self._raise_watchdog()
        return self.cycle

    def _accepted_total(self) -> int:
        """Progress metric: packets accepted (incl. acks) network-wide."""
        return sum(iface.received + iface.acks_received
                   for iface in self._ifaces)

    def _raise_watchdog(self) -> None:
        blocked = sorted(
            f"leaf{no}" for no, iface in self.leaves.items()
            if iface.outbox or (iface.reliable and iface.has_unacked()))
        diagnostic = {
            "cycle": self.cycle,
            "watchdog_cycles": self.watchdog_cycles,
            "in_flight": [
                f"{key[0]}/{key[1]}->leaf{pkt.dest_leaf}"
                f":port{pkt.dest_port}"
                for key, pkt in sorted(
                    ((self._slot_keys[sid], pkt)
                     for sid, pkt in self._in_flight.items()),
                    key=lambda kv: repr(kv[0]))],
            "outboxes": {f"leaf{no}": len(iface.outbox)
                         for no, iface in sorted(self.leaves.items())
                         if iface.outbox},
            "unacked": {f"leaf{no}": iface.unacked_count()
                        for no, iface in sorted(self.leaves.items())
                        if iface.reliable and iface.has_unacked()},
            "faults_dropped": self.faults_dropped,
            "faults_corrupted": self.faults_corrupted,
        }
        self.tracer.instant("noc:watchdog", category="noc", lane="noc",
                            cycle=self.cycle, blocked=len(blocked))
        raise DeadlockError(
            f"NoC made no delivery progress for {self.watchdog_cycles} "
            f"cycles with work pending (cycle {self.cycle})",
            blocked=blocked, diagnostic=diagnostic)

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(r.latency for r in self.delivered) / len(self.delivered)

    def throughput(self) -> float:
        """Delivered packets per cycle over the whole run."""
        if self.cycle == 0:
            return 0.0
        return len(self.delivered) / self.cycle
