"""Cycle-level simulation of the deflection-routed BFT.

Switches are bufferless (Hoplite-style): every packet arriving at a
switch must leave the same cycle.  Output assignment is age-ordered —
the oldest packet gets its preferred direction, younger packets deflect
to any legal free output — which provides the livelock resistance of
CHIPPER-style designs [18, 46].  Down-links to leaves only carry packets
for that leaf's subtree when possible; a packet deflected onto a wrong
leaf bounces: the leaf interface re-injects it ahead of new traffic.

The simulator measures delivered-packet latency and sustained
throughput, which the -O1 performance model uses as the effective
link/leaf bandwidths of the overlay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlockError, NoCError
from repro.noc.bft import BFTopology, SwitchId
from repro.noc.leaf import LeafInterface
from repro.noc.packet import AckPacket, DataPacket, Packet

#: Output slot identifiers: ("up", k) | ("down", child_side)
_UP = "up"
_DOWN = "down"


@dataclass
class DeliveryRecord:
    payload: int
    latency: int
    hops: int


class NetworkSimulator:
    """Simulates one overlay network with attached leaf interfaces.

    Args:
        topology: the BFT to simulate (single up-link).
        leaves: leaf number -> interface; missing leaves get bare ones.
        faults: optional :class:`repro.faults.NoCFaultInjector`; each
            injected data/ack flit may then be dropped or have a payload
            bit flipped.  Pair with ``reliable=True`` leaf interfaces so
            the CRC/retransmission layer recovers the loss.
        watchdog_cycles: with pending work but zero deliveries for this
            many cycles, the simulator raises :class:`DeadlockError`
            carrying a structured diagnostic (blocked leaves, outbox and
            reorder occupancies, in-flight packets) instead of spinning
            to the cycle limit.
    """

    def __init__(self, topology: BFTopology,
                 leaves: Optional[Dict[int, LeafInterface]] = None,
                 faults=None, watchdog_cycles: int = 50_000):
        if topology.up_links != 1:
            raise NoCError(
                "the cycle simulator models the paper's modest single "
                "up-link network; wider fat trees are handled by the "
                "analytic NoCPerformanceModel")
        self.topology = topology
        self.leaves: Dict[int, LeafInterface] = dict(leaves or {})
        for leaf, iface in self.leaves.items():
            if iface.leaf != leaf:
                raise NoCError(
                    f"leaf interface {iface.leaf} attached at {leaf}")
        # Padding leaves (tree rounded to a power of two) get bare
        # interfaces so mis-deflected packets bounce instead of dying.
        for leaf in range(topology.size):
            if leaf not in self.leaves:
                self.leaves[leaf] = LeafInterface(leaf, 1)
        # Link registers: packets in flight, written for the *next* cycle.
        # Keyed by (node, direction, lane); node is a SwitchId for switch
        # outputs, an int for leaf up-links.
        self._in_flight: Dict[Tuple, Packet] = {}
        self.cycle = 0
        self.delivered: List[DeliveryRecord] = []
        self.total_deflections = 0
        self.faults = faults
        self.watchdog_cycles = watchdog_cycles
        self.faults_dropped = 0
        self.faults_corrupted = 0
        self._injection_index = 0

    def attach(self, iface: LeafInterface) -> None:
        self.leaves[iface.leaf] = iface

    # -- one simulation step -----------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle."""
        topo = self.topology
        next_flight: Dict[Tuple, Packet] = {}

        # Gather arrivals per switch: packets on child up-links and on
        # the parent's down-link toward this switch.
        arrivals: Dict[SwitchId, List[Packet]] = {s: [] for s in
                                                  topo.switches()}
        for key, packet in self._in_flight.items():
            node, direction = key[0], key[1]
            if direction == _UP:
                if isinstance(node, int):            # leaf -> its parent
                    arrivals[topo.leaf_parent(node)].append(packet)
                else:                                 # switch -> parent
                    arrivals[topo.parent(node)].append(packet)
            else:                                     # switch -> below
                child_side = key[2]
                if node.level == 1:
                    # Down to a leaf: deliver (or bounce).
                    leaf_no = node.index * 2 + child_side
                    self._deliver(packet, leaf_no)
                else:
                    child = topo.children(node)[child_side]
                    arrivals[child].append(packet)

        # Route each switch's arrivals.
        for switch, packets in arrivals.items():
            if not packets:
                continue
            for packet in packets:
                packet.age += 1
                packet.hops += 1
            packets.sort(key=lambda p: -p.age)
            taken: set = set()
            for packet in packets:
                slot = self._pick_output(switch, packet, taken, next_flight)
                taken.add(slot)
                next_flight[slot] = packet

        # Leaf injections: a leaf's up-link is free if no switch wrote it
        # (switches never write leaf up-links), so inject when available.
        for leaf_no, iface in self.leaves.items():
            key = (leaf_no, _UP, 0)
            if key in next_flight:
                continue
            packet = iface.pop_injection()
            if packet is not None:
                if packet.injected_at == 0 and packet.age == 0:
                    packet.injected_at = self.cycle
                iface.note_transmitted(packet, self.cycle)
                packet = self._inject_faults(packet, leaf_no)
                if packet is not None:
                    next_flight[key] = packet

        self._in_flight = next_flight
        self.cycle += 1

        # Drive the reliability layer's ack timeouts: overdue unacked
        # flits re-enter their leaf's outbox for the next cycles.
        for iface in self.leaves.values():
            if iface.reliable:
                iface.service_retransmissions(self.cycle)

    def _inject_faults(self, packet: Packet,
                       leaf_no: int) -> Optional[Packet]:
        """Apply the fault plan to one injected flit (None = dropped)."""
        if self.faults is None \
                or not isinstance(packet, (DataPacket, AckPacket)):
            return packet
        index = self._injection_index
        self._injection_index += 1
        target = (f"leaf{leaf_no}->leaf{packet.dest_leaf}"
                  f":port{packet.dest_port}")
        outcome = self.faults.on_injection(index, target)
        if outcome == "drop":
            self.faults_dropped += 1
            return None
        if outcome == "corrupt":
            # Flip one payload bit without fixing the CRC: the receiver
            # detects the mismatch and treats the flit as lost.
            packet.payload ^= self.faults.corruption_mask(index)
            self.faults_corrupted += 1
        return packet

    def _deliver(self, packet: Packet, leaf_no: int) -> None:
        iface = self.leaves[leaf_no]
        accepted_before = iface.received
        bounced = iface.deliver(packet)
        if bounced is not None:
            iface.push_front(bounced)
        elif (not isinstance(packet, AckPacket)
              and iface.received > accepted_before):
            # Acks and discarded flits (bad CRC, duplicates) are not
            # application deliveries and stay out of the latency stats.
            self.delivered.append(DeliveryRecord(
                packet.payload, self.cycle - packet.injected_at,
                packet.hops))

    def _pick_output(self, switch: SwitchId, packet: Packet, taken: set,
                     next_flight: Dict[Tuple, Packet]) -> Tuple:
        topo = self.topology
        candidates: List[Tuple] = []
        # Preferred direction first.
        if topo.covers(switch, packet.dest_leaf):
            lo, _hi = topo.subtree_range(switch)
            span = 1 << (switch.level - 1)
            side = 0 if packet.dest_leaf < lo + span else 1
            candidates.append((switch, _DOWN, side))
            candidates.append((switch, _DOWN, 1 - side))
            for lane in range(topo.up_links):
                if switch.level < topo.levels:
                    candidates.append((switch, _UP, lane))
        else:
            for lane in range(topo.up_links):
                if switch.level < topo.levels:
                    candidates.append((switch, _UP, lane))
            candidates.append((switch, _DOWN, 0))
            candidates.append((switch, _DOWN, 1))
        for slot in candidates:
            if slot not in taken and slot not in next_flight:
                if slot != candidates[0]:
                    self.total_deflections += 1
                return slot
        raise NoCError(
            f"{switch}: no free output — switch radix violated")

    # -- convenience drivers ------------------------------------------------

    def run(self, max_cycles: int = 100_000) -> int:
        """Step until the network drains or the cycle limit hits.

        Returns the cycle count at quiescence.  Reliable leaves are not
        quiescent while they still hold unacknowledged flits: the run
        keeps stepping so retransmission timers can fire.  A watchdog
        turns pure stagnation (pending work, zero accepted deliveries
        for ``watchdog_cycles``) into a :class:`DeadlockError` with a
        structured diagnostic instead of an opaque cycle-limit abort.
        """
        idle = 0
        last_progress_cycle = 0
        last_accepted = self._accepted_total()
        while idle < 3:
            if self.cycle >= max_cycles:
                raise NoCError(
                    f"network did not drain within {max_cycles} cycles")
            busy = bool(self._in_flight) or any(
                iface.outbox or (iface.reliable and iface.has_unacked())
                for iface in self.leaves.values())
            self.step()
            idle = 0 if busy else idle + 1
            accepted = self._accepted_total()
            if accepted != last_accepted:
                last_accepted = accepted
                last_progress_cycle = self.cycle
            elif (busy and self.watchdog_cycles > 0
                    and self.cycle - last_progress_cycle
                    >= self.watchdog_cycles):
                self._raise_watchdog()
        return self.cycle

    def _accepted_total(self) -> int:
        """Progress metric: packets accepted (incl. acks) network-wide."""
        return sum(iface.received + iface.acks_received
                   for iface in self.leaves.values())

    def _raise_watchdog(self) -> None:
        blocked = sorted(
            f"leaf{no}" for no, iface in self.leaves.items()
            if iface.outbox or (iface.reliable and iface.has_unacked()))
        diagnostic = {
            "cycle": self.cycle,
            "watchdog_cycles": self.watchdog_cycles,
            "in_flight": [
                f"{key[0]}/{key[1]}->leaf{pkt.dest_leaf}"
                f":port{pkt.dest_port}"
                for key, pkt in sorted(self._in_flight.items(),
                                       key=lambda kv: repr(kv[0]))],
            "outboxes": {f"leaf{no}": len(iface.outbox)
                         for no, iface in sorted(self.leaves.items())
                         if iface.outbox},
            "unacked": {f"leaf{no}": iface.unacked_count()
                        for no, iface in sorted(self.leaves.items())
                        if iface.reliable and iface.has_unacked()},
            "faults_dropped": self.faults_dropped,
            "faults_corrupted": self.faults_corrupted,
        }
        raise DeadlockError(
            f"NoC made no delivery progress for {self.watchdog_cycles} "
            f"cycles with work pending (cycle {self.cycle})",
            blocked=blocked, diagnostic=diagnostic)

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(r.latency for r in self.delivered) / len(self.delivered)

    def throughput(self) -> float:
        """Delivered packets per cycle over the whole run."""
        if self.cycle == 0:
            return 0.0
        return len(self.delivered) / self.cycle
