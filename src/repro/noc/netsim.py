"""Cycle-level simulation of the deflection-routed BFT.

Switches are bufferless (Hoplite-style): every packet arriving at a
switch must leave the same cycle.  Output assignment is age-ordered —
the oldest packet gets its preferred direction, younger packets deflect
to any legal free output — which provides the livelock resistance of
CHIPPER-style designs [18, 46].  Down-links to leaves only carry packets
for that leaf's subtree when possible; a packet deflected onto a wrong
leaf bounces: the leaf interface re-injects it ahead of new traffic.

The simulator measures delivered-packet latency and sustained
throughput, which the -O1 performance model uses as the effective
link/leaf bandwidths of the overlay.

The inner loop is table-driven: switch candidate outputs, link
destinations and arrival buffers are precomputed once per topology, so
a cycle is a couple of dict lookups per in-flight packet instead of
per-cycle :class:`SwitchId` construction and routing geometry.  The
tables are pure caches — results are bit-identical to the naive
geometry walk, which the equivalence tests assert.

Two engines step the network (see :mod:`repro.simengine`):

* ``scalar`` — the reference loop above: one dict/list operation per
  packet per cycle.
* ``vector`` — all in-flight packets live in numpy columns
  (slot/dest/age/hops, plus an index into a stable packet-object
  store); routing class selection, age-ordered arbitration (a stable
  ``lexsort`` reproduces the scalar per-switch sort exactly) and
  deflection resolution are whole-array operations per cycle.  Per
  cycle Python touches only actual deliveries and injections, so the
  cost is ~flat in the in-flight count — the win grows with network
  size.  Deliveries, deflection counts, latencies and fault outcomes
  are bit-identical to the scalar engine (pinned by the equivalence
  tests).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlockError, NoCError
from repro.noc.bft import BFTopology, SwitchId
from repro.noc.leaf import LeafInterface
from repro.noc.packet import AckPacket, DataPacket, Packet
from repro.simengine import VECTOR, resolve_engine
from repro.trace import NULL_TRACER

#: Output slot identifiers: ("up", k) | ("down", child_side)
_UP = "up"
_DOWN = "down"

_AGE = operator.attrgetter("age")


@dataclass
class DeliveryRecord:
    payload: int
    latency: int
    hops: int


class NetworkSimulator:
    """Simulates one overlay network with attached leaf interfaces.

    Args:
        topology: the BFT to simulate (single up-link).
        leaves: leaf number -> interface; missing leaves get bare ones.
        faults: optional :class:`repro.faults.NoCFaultInjector`; each
            injected data/ack flit may then be dropped or have a payload
            bit flipped.  Pair with ``reliable=True`` leaf interfaces so
            the CRC/retransmission layer recovers the loss.
        watchdog_cycles: with pending work but zero deliveries for this
            many cycles, the simulator raises :class:`DeadlockError`
            carrying a structured diagnostic (blocked leaves, outbox and
            reorder occupancies, in-flight packets) instead of spinning
            to the cycle limit.
        tracer: optional :class:`repro.trace.Tracer`; retransmission
            bursts and the watchdog firing then appear as instant
            events on the ``noc`` lane (with the cycle they happened
            at), so a flaky network is visible in the same trace as the
            build that ran over it.
        engine: simulation engine (``scalar``/``vector``); ``None``
            resolves through :func:`repro.simengine.resolve_engine`.
    """

    def __init__(self, topology: BFTopology,
                 leaves: Optional[Dict[int, LeafInterface]] = None,
                 faults=None, watchdog_cycles: int = 50_000,
                 tracer=None, engine: Optional[str] = None):
        if topology.up_links != 1:
            raise NoCError(
                "the cycle simulator models the paper's modest single "
                "up-link network; wider fat trees are handled by the "
                "analytic NoCPerformanceModel")
        self.topology = topology
        self.leaves: Dict[int, LeafInterface] = dict(leaves or {})
        for leaf, iface in self.leaves.items():
            if iface.leaf != leaf:
                raise NoCError(
                    f"leaf interface {iface.leaf} attached at {leaf}")
        # Padding leaves (tree rounded to a power of two) get bare
        # interfaces so mis-deflected packets bounce instead of dying.
        for leaf in range(topology.size):
            if leaf not in self.leaves:
                self.leaves[leaf] = LeafInterface(leaf, 1)
        # Link registers: packets in flight, written for the *next* cycle.
        # Keyed by interned slot id; _slot_keys maps an id back to its
        # (node, direction, lane) — node is a SwitchId for switch
        # outputs, an int for leaf up-links.
        self._in_flight: Dict[int, Packet] = {}
        self.cycle = 0
        self.delivered: List[DeliveryRecord] = []
        self.total_deflections = 0
        self.faults = faults
        self.watchdog_cycles = watchdog_cycles
        self.faults_dropped = 0
        self.faults_corrupted = 0
        self._injection_index = 0
        self._accepted_events = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._retrans_seen = 0
        self.engine = resolve_engine(engine)
        self._vector = self.engine == VECTOR
        self._build_tables()

    def attach(self, iface: LeafInterface) -> None:
        self.leaves[iface.leaf] = iface
        self._build_tables()

    # -- routing tables ------------------------------------------------------

    def _build_tables(self) -> None:
        """Precompute the per-topology constants the hot loop uses.

        * one reusable arrival buffer per switch (cleared each cycle
          instead of rebuilding a ``{switch: []}`` dict);
        * every output slot ``(node, direction, lane)`` interned to a
          small int id, so the per-cycle ``_in_flight``/``taken`` set
          operations hash ints instead of SwitchId-bearing tuples;
        * per-switch candidate-slot tuples in deflection preference
          order, and a link-destination table mapping every slot id to
          either the arrival buffer it feeds or the leaf it delivers to.
        """
        topo = self.topology
        switches = list(topo.switches())
        buffers: Dict[SwitchId, List[Packet]] = {s: [] for s in switches}
        slot_keys: List[Tuple] = []      # id -> (node, direction, lane)

        def intern(key: Tuple) -> int:
            slot_keys.append(key)
            return len(slot_keys) - 1

        # (buffer, switch, lo, mid, hi, cand_left, cand_right, cand_out)
        route_entries = []
        for s in switches:
            lo, hi = topo.subtree_range(s)
            span = 1 << (s.level - 1)
            ups: Tuple[int, ...] = ()
            if s.level < topo.levels:
                ups = tuple(intern((s, _UP, lane))
                            for lane in range(topo.up_links))
            down = (intern((s, _DOWN, 0)), intern((s, _DOWN, 1)))
            route_entries.append((
                buffers[s], s, lo, lo + span, hi,
                down + ups,                    # covered, left child first
                (down[1], down[0]) + ups,      # covered, right child first
                ups + down,                    # not covered: climb
            ))
        leaf_slots = [intern((leaf, _UP, 0))
                      for leaf in range(topo.size)]
        # slot id -> (deliver_to_leaf?, arrival-buffer-or-leaf_no)
        dest: List[Tuple] = [None] * len(slot_keys)
        for sid, (node, direction, lane) in enumerate(slot_keys):
            if direction == _UP:
                if isinstance(node, int):            # leaf -> its parent
                    dest[sid] = (False, buffers[topo.leaf_parent(node)])
                else:                                 # switch -> parent
                    dest[sid] = (False, buffers[topo.parent(node)])
            elif node.level == 1:                     # down to a leaf
                dest[sid] = (True, node.index * 2 + lane)
            else:
                dest[sid] = (False, buffers[topo.children(node)[lane]])
        self._route_entries = route_entries
        self._dest = dest
        self._slot_keys = slot_keys
        self._leaf_entries = [(leaf, iface, leaf_slots[leaf])
                              for leaf, iface in self.leaves.items()]
        self._ifaces = tuple(self.leaves.values())
        self._reliable_ifaces = tuple(
            iface for iface in self.leaves.values() if iface.reliable)
        if self._vector:
            self._build_vector_tables()

    def _build_vector_tables(self) -> None:
        """Recast the routing tables as numpy columns.

        Slot ids index ``_slot_switch`` (arrival-switch row, or -1 when
        the slot delivers) and ``_slot_leaf`` (delivery leaf, or -1).
        Switch rows index the subtree bounds and a ``(3 classes x 3
        candidates)`` table padded with -1 — class 0/1/2 are
        covered-left / covered-right / climb, mirroring the scalar
        candidate tuples element for element.
        """
        import numpy as np

        self._np = np
        buffer_row = {id(entry[0]): row
                      for row, entry in enumerate(self._route_entries)}
        n_slots = len(self._slot_keys)
        slot_switch = np.full(n_slots, -1, np.int64)
        slot_leaf = np.full(n_slots, -1, np.int64)
        for sid, (to_leaf, target) in enumerate(self._dest):
            if to_leaf:
                slot_leaf[sid] = target
            else:
                slot_switch[sid] = buffer_row[id(target)]
        n_switches = len(self._route_entries)
        lo = np.empty(n_switches, np.int64)
        mid = np.empty(n_switches, np.int64)
        hi = np.empty(n_switches, np.int64)
        cand = np.full((n_switches, 3, 3), -1, np.int64)
        for row, entry in enumerate(self._route_entries):
            lo[row], mid[row], hi[row] = entry[2], entry[3], entry[4]
            for cls in range(3):
                slots = entry[5 + cls]
                cand[row, cls, :len(slots)] = slots
        self._slot_switch = slot_switch
        self._slot_leaf = slot_leaf
        self._sw_lo = lo
        self._sw_mid = mid
        self._sw_hi = hi
        self._cand_table = cand
        self._cand_flat = cand.reshape(-1, 3)
        # Per-leaf tables for the delivery/injection loops.  ``pos`` is
        # the leaf's position in _leaf_entries: scalar injections enter
        # next_flight in that order, and each leaf injects at most one
        # packet per cycle, so sorting vector injections by pos
        # reproduces the scalar insertion order exactly.
        size = self.topology.size
        by_no = [self.leaves[i] for i in range(size)]
        self._vleaf_by_no = by_no
        self._vleaf_fast = np.array(
            [not iface.reliable for iface in by_no], dtype=bool)
        upslot = np.zeros(size, np.int64)
        pos_of = np.zeros(size, np.int64)
        for pos, (leaf, _iface, key) in enumerate(self._leaf_entries):
            upslot[leaf] = key
            pos_of[leaf] = pos
        self._vleaf_upslot = upslot
        self._vleaf_pos = pos_of
        self._vleaf_entries = [
            (leaf, iface, key, iface.reliable, iface.outbox, pos)
            for pos, (leaf, iface, key) in enumerate(self._leaf_entries)]
        # Flight state survives an attach()-triggered table rebuild
        # (slot interning is deterministic, so the ids stay valid).
        if not hasattr(self, "_vpidx"):
            self._vstore: List[Packet] = []
            empty = np.zeros(0, np.int64)
            self._vpidx = empty
            self._vslot = empty.copy()
            self._vdest = empty.copy()
            self._vage = empty.copy()
            self._vhops = empty.copy()

    # -- one simulation step -----------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle."""
        if self._vector:
            self._step_vector()
        else:
            self._step_scalar()

    def _step_scalar(self) -> None:
        next_flight: Dict[int, Packet] = {}
        dest = self._dest

        # Gather arrivals per switch: packets on child up-links and on
        # the parent's down-link toward this switch; down-links out of
        # level 1 deliver (or bounce) at their leaf.
        for key, packet in self._in_flight.items():
            to_leaf, target = dest[key]
            if to_leaf:
                self._deliver(packet, target)
            else:
                target.append(packet)

        # Route each switch's arrivals, oldest packet first.
        deflections = 0
        for entry in self._route_entries:
            packets = entry[0]
            if not packets:
                continue
            for packet in packets:
                packet.age += 1
                packet.hops += 1
            packets.sort(key=_AGE, reverse=True)
            taken: set = set()
            lo, mid, hi = entry[2], entry[3], entry[4]
            for packet in packets:
                d = packet.dest_leaf
                if lo <= d < hi:
                    candidates = entry[5] if d < mid else entry[6]
                else:
                    candidates = entry[7]
                for slot in candidates:
                    if slot not in taken and slot not in next_flight:
                        break
                else:
                    raise NoCError(
                        f"{entry[1]}: no free output — switch radix "
                        f"violated")
                if slot is not candidates[0]:
                    deflections += 1
                taken.add(slot)
                next_flight[slot] = packet
            del packets[:]
        self.total_deflections += deflections

        # Leaf injections: a leaf's up-link is free if no switch wrote it
        # (switches never write leaf up-links), so inject when available.
        cycle = self.cycle
        faults = self.faults
        for leaf_no, iface, key in self._leaf_entries:
            if key in next_flight:
                continue
            packet = iface.pop_injection()
            if packet is not None:
                if packet.injected_at < 0:
                    packet.injected_at = cycle
                iface.note_transmitted(packet, cycle)
                if faults is not None:
                    packet = self._inject_faults(packet, leaf_no)
                if packet is not None:
                    next_flight[key] = packet

        self._in_flight = next_flight
        self.cycle = cycle + 1
        self._service_reliability()

    def _step_vector(self) -> None:
        """One cycle over the numpy flight columns.

        The in-flight set is four aligned int64 columns (slot, dest,
        age, hops) plus ``_vpidx`` — an index into the append-only
        ``_vstore`` packet-object list, so reordering the flight each
        cycle is a numpy gather instead of a Python list rebuild.
        Column order *is* the scalar ``_in_flight`` dict insertion
        order; a stable ``lexsort`` on (switch row, -age) therefore
        reproduces the scalar per-switch age sort, including its
        arrival-order tie-breaks.  Python-level work per cycle is
        limited to actual deliveries and leaf injections.
        """
        np = self._np
        store = self._vstore
        pidx = self._vpidx
        age = self._vage
        hops = self._vhops
        dest = self._vdest
        # Bounce fast path: the scalar engine's deliver()/push_front()/
        # pop_injection() round-trip for a mis-deflected packet at a
        # non-reliable, fault-free leaf reduces to ``bounced += 1;
        # sent += 1`` and the packet re-entering flight on that leaf's
        # up-link with dest/age/hops/injected_at unchanged — so those
        # rows never leave the arrays.  ``b_cols`` holds their spliced
        # columns (pidx, slot, dest, age, hops, leaf pos).
        bounced_leaves: set = set()
        b_cols = None
        if pidx.size:
            slot = self._vslot
            sw = self._slot_switch[slot]
            deliver_idx = np.flatnonzero(sw < 0)
            if deliver_idx.size:
                dleaf = self._slot_leaf[slot[deliver_idx]]
                ddest = dest[deliver_idx]
                if self.faults is None:
                    bounce_m = (ddest != dleaf) & self._vleaf_fast[dleaf]
                    n_bounce = int(bounce_m.sum())
                else:
                    bounce_m = None
                    n_bounce = 0
                if n_bounce < deliver_idx.size:
                    slow = (deliver_idx if bounce_m is None
                            else deliver_idx[~bounce_m])
                    s_leaf = (dleaf if bounce_m is None
                              else dleaf[~bounce_m]).tolist()
                    s_pidx = pidx[slow].tolist()
                    s_age = age[slow].tolist()
                    s_hops = hops[slow].tolist()
                    for k, leaf in enumerate(s_leaf):
                        # Sync the object before handing it back to the
                        # leaf: a bounced packet keeps its age priority.
                        packet = store[s_pidx[k]]
                        packet.age = s_age[k]
                        packet.hops = s_hops[k]
                        self._deliver(packet, leaf)
                if n_bounce:
                    b_idx = deliver_idx[bounce_m]
                    b_leaf = dleaf[bounce_m]
                    by_no = self._vleaf_by_no
                    leaves = b_leaf.tolist()
                    for leaf in leaves:
                        iface = by_no[leaf]
                        iface.bounced += 1
                        iface.sent += 1
                    bounced_leaves = set(leaves)
                    b_cols = (pidx[b_idx],
                              self._vleaf_upslot[b_leaf],
                              ddest[bounce_m],
                              age[b_idx],
                              hops[b_idx],
                              self._vleaf_pos[b_leaf])
            route_idx = np.flatnonzero(sw >= 0)
        else:
            route_idx = pidx
        if route_idx.size:
            rage = age[route_idx] + 1
            rhops = hops[route_idx] + 1
            rsw = sw[route_idx]
            # Stable sort by (switch row, age desc), arrival-order ties
            # — one composite int64 key beats a two-key lexsort.  Ages
            # stay far below 2**40 (the cycle limit bounds them).
            order = np.argsort((rsw << 40) - rage, kind="stable")
            sidx = route_idx[order]
            ssw = rsw[order]
            n = ssw.size
            positions = np.arange(n)
            group_start = np.empty(n, bool)
            group_start[0] = True
            if n > 1:
                group_start[1:] = ssw[1:] != ssw[:-1]
            # Rank of each packet within its switch's age-sorted
            # arrivals: position minus the position of the group head.
            rank = positions - np.maximum.accumulate(
                np.where(group_start, positions, 0))
            rdest = dest[sidx]
            covered = (self._sw_lo[ssw] <= rdest) \
                & (rdest < self._sw_hi[ssw])
            cls = np.where(covered,
                           np.where(rdest < self._sw_mid[ssw], 0, 1), 2)
            cands = self._cand_flat[ssw * 3 + cls]
            first = cands[:, 0]
            chosen = first.copy()
            # Rank 1 defers to its group head (the previous sorted row);
            # rank 2 to the two rows before it.  Candidates within a
            # class are distinct, so "first not taken" is closed-form.
            rank1 = np.flatnonzero(rank == 1)
            if rank1.size:
                t0 = chosen[rank1 - 1]
                c0 = cands[rank1, 0]
                chosen[rank1] = np.where(c0 != t0, c0, cands[rank1, 1])
            rank2 = np.flatnonzero(rank == 2)
            if rank2.size:
                t0 = chosen[rank2 - 2]
                t1 = chosen[rank2 - 1]
                c0 = cands[rank2, 0]
                c1 = cands[rank2, 1]
                free0 = (c0 != t0) & (c0 != t1)
                free1 = ~free0 & (c1 != t0) & (c1 != t1)
                chosen[rank2] = np.where(
                    free0, c0, np.where(free1, c1, cands[rank2, 2]))
            if int(rank.max()) > 2 or (chosen < 0).any():
                row = int(ssw[int(rank.argmax())])
                raise NoCError(
                    f"{self._route_entries[row][1]}: no free output — "
                    f"switch radix violated")
            self.total_deflections += int((chosen != first).sum())
            new_pidx = pidx[sidx]
            new_slot = chosen
            new_dest = rdest
            new_age = rage[order]
            new_hops = rhops[order]
        else:
            empty = pidx[:0]
            new_pidx = new_slot = new_dest = empty
            new_age = new_hops = empty

        # Leaf injections, in _leaf_entries order exactly as the scalar
        # loop: switch outputs never target leaf up-links, so the slot
        # is always free.  A leaf with a fast-pathed bounce re-injects
        # that packet (it sits at the head of the scalar outbox) and
        # must not pop its own traffic this cycle; fresh injections and
        # bounce rows are merged by leaf position afterwards.
        cycle = self.cycle
        faults = self.faults
        inj: List[Tuple[int, int, int, int, int, int]] = []
        for leaf_no, iface, key, rel, outbox, pos in self._vleaf_entries:
            if leaf_no in bounced_leaves or not outbox:
                continue
            # Inlined pop_injection(): count it sent, pop the head.
            iface.sent += 1
            packet = outbox.popleft()
            if packet.injected_at < 0:
                packet.injected_at = cycle
            if rel:
                iface.note_transmitted(packet, cycle)
            if faults is not None:
                packet = self._inject_faults(packet, leaf_no)
                if packet is None:
                    continue
            inj.append((len(store), key, packet.dest_leaf,
                        packet.age, packet.hops, pos))
            store.append(packet)
        if inj or b_cols is not None:
            if inj:
                cols = tuple(zip(*inj))
                fresh = [np.asarray(c, np.int64) for c in cols]
                if b_cols is not None:
                    parts = [np.concatenate(bf)
                             for bf in zip(b_cols, fresh)]
                else:
                    parts = fresh
            else:
                parts = list(b_cols)
            if parts[5].size > 1:
                perm = np.argsort(parts[5], kind="stable")
                parts = [col[perm] for col in parts[:5]]
            new_pidx = np.concatenate([new_pidx, parts[0]])
            new_slot = np.concatenate([new_slot, parts[1]])
            new_dest = np.concatenate([new_dest, parts[2]])
            new_age = np.concatenate([new_age, parts[3]])
            new_hops = np.concatenate([new_hops, parts[4]])
        self._vpidx = new_pidx
        self._vslot = new_slot
        self._vdest = new_dest
        self._vage = new_age
        self._vhops = new_hops
        if len(store) > 1024 and len(store) > 8 * new_pidx.size:
            # Drop delivered packets from the store now and then so a
            # long run does not hold every packet ever injected.
            self._vstore = [store[i] for i in new_pidx.tolist()]
            self._vpidx = np.arange(len(self._vstore), dtype=np.int64)
        self.cycle = cycle + 1
        self._service_reliability()

    def _service_reliability(self) -> None:
        # Drive the reliability layer's ack timeouts: overdue unacked
        # flits re-enter their leaf's outbox for the next cycles.
        for iface in self._reliable_ifaces:
            iface.service_retransmissions(self.cycle)
        if self._reliable_ifaces and self.tracer.enabled:
            total = sum(iface.retransmissions
                        for iface in self._reliable_ifaces)
            if total != self._retrans_seen:
                self.tracer.instant(
                    "noc:retransmit", category="noc", lane="noc",
                    cycle=self.cycle, flits=total - self._retrans_seen)
                self._retrans_seen = total

    def _inject_faults(self, packet: Packet,
                       leaf_no: int) -> Optional[Packet]:
        """Apply the fault plan to one injected flit (None = dropped)."""
        if self.faults is None \
                or not isinstance(packet, (DataPacket, AckPacket)):
            return packet
        index = self._injection_index
        self._injection_index += 1
        target = (f"leaf{leaf_no}->leaf{packet.dest_leaf}"
                  f":port{packet.dest_port}")
        outcome = self.faults.on_injection(index, target)
        if outcome == "drop":
            self.faults_dropped += 1
            return None
        if outcome == "corrupt":
            # Flip one payload bit without fixing the CRC: the receiver
            # detects the mismatch and treats the flit as lost.
            packet.payload ^= self.faults.corruption_mask(index)
            self.faults_corrupted += 1
        return packet

    def _deliver(self, packet: Packet, leaf_no: int) -> None:
        iface = self.leaves[leaf_no]
        received_before = iface.received
        acks_before = iface.acks_received
        bounced = iface.deliver(packet)
        if bounced is not None:
            iface.push_front(bounced)
            return
        if iface.received > received_before:
            self._accepted_events += 1
            if not isinstance(packet, AckPacket):
                # Acks and discarded flits (bad CRC, duplicates) are
                # not application deliveries and stay out of the
                # latency stats.
                self.delivered.append(DeliveryRecord(
                    packet.payload, self.cycle - packet.injected_at,
                    packet.hops))
        elif iface.acks_received > acks_before:
            self._accepted_events += 1

    # -- convenience drivers ------------------------------------------------

    def run(self, max_cycles: int = 100_000) -> int:
        """Step until the network drains or the cycle limit hits.

        Returns the cycle count at quiescence.  Reliable leaves are not
        quiescent while they still hold unacknowledged flits: the run
        keeps stepping so retransmission timers can fire.  A watchdog
        turns pure stagnation (pending work, zero accepted deliveries
        for ``watchdog_cycles``) into a :class:`DeadlockError` with a
        structured diagnostic instead of an opaque cycle-limit abort.
        """
        idle = 0
        last_progress_cycle = 0
        last_accepted = self._accepted_total()
        while idle < 3:
            if self.cycle >= max_cycles:
                raise NoCError(
                    f"network did not drain within {max_cycles} cycles")
            busy = self._has_in_flight()
            if not busy:
                for iface in self._ifaces:
                    if iface.outbox or (iface.reliable
                                        and iface.has_unacked()):
                        busy = True
                        break
            self.step()
            idle = 0 if busy else idle + 1
            accepted = self._accepted_total()
            if accepted != last_accepted:
                last_accepted = accepted
                last_progress_cycle = self.cycle
            elif (busy and self.watchdog_cycles > 0
                    and self.cycle - last_progress_cycle
                    >= self.watchdog_cycles):
                self._raise_watchdog()
        return self.cycle

    def _accepted_total(self) -> int:
        """Progress metric: packets accepted (incl. acks) network-wide.

        Maintained as an O(1) event counter in :meth:`_deliver` — the
        only path that accepts packets during a run — instead of a
        per-cycle sum over every leaf.  ``run`` only compares values
        for change, so the counter is equivalent to the sum.
        """
        return self._accepted_events

    def _has_in_flight(self) -> bool:
        if self._vector:
            return self._vpidx.size > 0
        return bool(self._in_flight)

    def _in_flight_items(self) -> List[Tuple[int, Packet]]:
        """(slot id, packet) pairs for diagnostics, either engine."""
        if self._vector:
            store = self._vstore
            return [(sid, store[p]) for sid, p in
                    zip(self._vslot.tolist(), self._vpidx.tolist())]
        return list(self._in_flight.items())

    def _raise_watchdog(self) -> None:
        blocked = sorted(
            f"leaf{no}" for no, iface in self.leaves.items()
            if iface.outbox or (iface.reliable and iface.has_unacked()))
        diagnostic = {
            "cycle": self.cycle,
            "watchdog_cycles": self.watchdog_cycles,
            "in_flight": [
                f"{key[0]}/{key[1]}->leaf{pkt.dest_leaf}"
                f":port{pkt.dest_port}"
                for key, pkt in sorted(
                    ((self._slot_keys[sid], pkt)
                     for sid, pkt in self._in_flight_items()),
                    key=lambda kv: repr(kv[0]))],
            "outboxes": {f"leaf{no}": len(iface.outbox)
                         for no, iface in sorted(self.leaves.items())
                         if iface.outbox},
            "unacked": {f"leaf{no}": iface.unacked_count()
                        for no, iface in sorted(self.leaves.items())
                        if iface.reliable and iface.has_unacked()},
            "faults_dropped": self.faults_dropped,
            "faults_corrupted": self.faults_corrupted,
        }
        self.tracer.instant("noc:watchdog", category="noc", lane="noc",
                            cycle=self.cycle, blocked=len(blocked))
        raise DeadlockError(
            f"NoC made no delivery progress for {self.watchdog_cycles} "
            f"cycles with work pending (cycle {self.cycle})",
            blocked=blocked, diagnostic=diagnostic)

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(r.latency for r in self.delivered) / len(self.delivered)

    def throughput(self) -> float:
        """Delivered packets per cycle over the whole run."""
        if self.cycle == 0:
            return 0.0
        return len(self.delivered) / self.cycle
