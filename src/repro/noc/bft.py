"""Butterfly-fat-tree topology.

A binary fat tree over the leaves (pages + the DMA interface).  Switch
``(level, index)`` is the ancestor of the ``2**level`` leaves whose
numbers share the prefix ``index``.  Each switch has two child links and
``up_links`` parent links; PLD's network is deliberately modest ("tuned
for mapping speed over performance", Sec. 7.4), so the default fatness
is one up-link per switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import NoCError


@dataclass(frozen=True)
class SwitchId:
    """A switch position in the tree."""

    level: int        # 1 = parents of leaves
    index: int        # subtree index at this level

    def __repr__(self) -> str:
        return f"S{self.level}.{self.index}"


class BFTopology:
    """Geometry helpers for a binary fat tree over ``n_leaves`` leaves."""

    def __init__(self, n_leaves: int, up_links: int = 1):
        if n_leaves < 2:
            raise NoCError("a linking network needs at least 2 leaves")
        if up_links < 1:
            raise NoCError("up_links must be >= 1")
        self.n_leaves = n_leaves
        self.up_links = up_links
        self.levels = max(1, math.ceil(math.log2(n_leaves)))
        self.size = 1 << self.levels       # leaves padded to a power of 2

    def switches(self) -> Iterator[SwitchId]:
        for level in range(1, self.levels + 1):
            for index in range(self.size >> level):
                yield SwitchId(level, index)

    def parent(self, switch: SwitchId) -> SwitchId:
        if switch.level >= self.levels:
            raise NoCError(f"{switch} is the root; no parent")
        return SwitchId(switch.level + 1, switch.index // 2)

    def children(self, switch: SwitchId) -> Tuple[SwitchId, SwitchId]:
        if switch.level <= 1:
            raise NoCError(f"{switch} is a leaf parent; children are leaves")
        return (SwitchId(switch.level - 1, switch.index * 2),
                SwitchId(switch.level - 1, switch.index * 2 + 1))

    def leaf_parent(self, leaf: int) -> SwitchId:
        self._check_leaf(leaf)
        return SwitchId(1, leaf // 2)

    def subtree_range(self, switch: SwitchId) -> Tuple[int, int]:
        """[lo, hi) leaf range under a switch."""
        span = 1 << switch.level
        return switch.index * span, (switch.index + 1) * span

    def covers(self, switch: SwitchId, leaf: int) -> bool:
        lo, hi = self.subtree_range(switch)
        return lo <= leaf < hi

    def route_hops(self, src: int, dst: int) -> int:
        """Contention-free hop count between two leaves."""
        self._check_leaf(src)
        self._check_leaf(dst)
        if src == dst:
            return 0
        # Climb to the lowest common ancestor, then descend.
        lca_level = (src ^ dst).bit_length()
        return 2 * lca_level

    def common_ancestor(self, src: int, dst: int) -> SwitchId:
        level = max(1, (src ^ dst).bit_length())
        return SwitchId(level, src >> level)

    def links_on_path(self, src: int, dst: int) -> List[Tuple[SwitchId, str]]:
        """(switch, direction) pairs traversed from src to dst.

        Directions are "up" (towards the root, leaving the switch) and
        "down" (towards the leaves).  Used by the analytic bandwidth
        model to find shared tree links.
        """
        if src == dst:
            return []
        lca = self.common_ancestor(src, dst)
        path: List[Tuple[SwitchId, str]] = []
        cursor = self.leaf_parent(src)
        while cursor.level < lca.level:
            path.append((cursor, "up"))
            cursor = self.parent(cursor)
        # Descend: record each switch we leave downward.
        down: List[Tuple[SwitchId, str]] = []
        cursor = self.leaf_parent(dst)
        while cursor.level < lca.level:
            down.append((cursor, "down"))
            cursor = self.parent(cursor)
        down.append((lca, "down"))
        path.extend(reversed(down))
        return path

    def _check_leaf(self, leaf: int) -> None:
        if not (0 <= leaf < self.size):
            raise NoCError(f"leaf {leaf} outside tree of {self.size}")

    def __repr__(self) -> str:
        return (f"BFTopology({self.n_leaves} leaves, {self.levels} levels, "
                f"up={self.up_links})")
