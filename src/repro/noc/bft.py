"""Butterfly-fat-tree topology.

A binary fat tree over the leaves (pages + the DMA interface).  Switch
``(level, index)`` is the ancestor of the ``2**level`` leaves whose
numbers share the prefix ``index``.  Each switch has two child links and
``up_links`` parent links; PLD's network is deliberately modest ("tuned
for mapping speed over performance", Sec. 7.4), so the default fatness
is one up-link per switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import NoCError


@dataclass(frozen=True)
class SwitchId:
    """A switch position in the tree."""

    level: int        # 1 = parents of leaves
    index: int        # subtree index at this level

    def __repr__(self) -> str:
        return f"S{self.level}.{self.index}"


class BFTopology:
    """Geometry helpers for a binary fat tree over ``n_leaves`` leaves.

    Args:
        n_leaves: leaves (pages + the DMA interface leaf).
        up_links: parent links per switch (tree fatness).
        leaf_slr: optional SLR number per leaf (index = leaf number).
            Big multi-die devices route inter-SLR traffic through a
            limited set of interposer wires, so the analytic model (and
            floorplanning sanity checks) need to know which tree links
            cross a die boundary.  Leaves beyond ``len(leaf_slr)`` —
            the power-of-two padding — inherit the last entry.
    """

    def __init__(self, n_leaves: int, up_links: int = 1,
                 leaf_slr: Optional[Tuple[int, ...]] = None):
        if n_leaves < 2:
            raise NoCError("a linking network needs at least 2 leaves")
        if up_links < 1:
            raise NoCError("up_links must be >= 1")
        if leaf_slr is not None and len(leaf_slr) != n_leaves:
            raise NoCError(
                f"leaf_slr has {len(leaf_slr)} entries for "
                f"{n_leaves} leaves")
        self.n_leaves = n_leaves
        self.up_links = up_links
        self.leaf_slr = tuple(leaf_slr) if leaf_slr is not None else None
        self.levels = max(1, math.ceil(math.log2(n_leaves)))
        self.size = 1 << self.levels       # leaves padded to a power of 2

    @classmethod
    def for_overlay(cls, overlay, up_links: int = 1) -> "BFTopology":
        """Topology for an overlay: leaf 0 = DMA, leaf *n* = page *n*.

        The DMA interface sits with SLR 0 (it lives next to the static
        shell's PCIe endpoint); every page leaf carries its floorplan
        SLR, so :meth:`slr_crossings` prices interposer hops on the
        multi-die scaling targets (U280: 3 SLRs, VU19P: 4).
        """
        by_number = {p.number: p.slr for p in overlay.pages}
        n_leaves = max(by_number) + 1
        leaf_slr = tuple(by_number.get(leaf, 0)
                         for leaf in range(n_leaves))
        return cls(n_leaves, up_links=up_links, leaf_slr=leaf_slr)

    def slr_of(self, leaf: int) -> int:
        """The SLR a leaf sits on (0 when no SLR map was given)."""
        self._check_leaf(leaf)
        if not self.leaf_slr:
            return 0
        return self.leaf_slr[min(leaf, len(self.leaf_slr) - 1)]

    def slr_crossings(self, src: int, dst: int) -> int:
        """Die boundaries a packet crosses between two leaves.

        SLRs tile the device in order, so a route between dies ``a``
        and ``b`` crosses ``|a - b|`` interposer boundaries.
        """
        return abs(self.slr_of(src) - self.slr_of(dst))

    def slr_cut_links(self) -> List[Tuple[SwitchId, int]]:
        """Tree up-links whose subtree spans more than one SLR.

        Returns (switch, distinct-SLR-count) pairs.  These are the
        links that physically map onto interposer wires; the scaling
        suite checks the floorplan keeps them near the tree root,
        where the fat tree concentrates bandwidth anyway.
        """
        if not self.leaf_slr:
            return []
        cuts: List[Tuple[SwitchId, int]] = []
        for switch in self.switches():
            lo, hi = self.subtree_range(switch)
            spanned = {self.slr_of(min(leaf, self.n_leaves - 1))
                       for leaf in range(lo, hi)}
            if len(spanned) > 1:
                cuts.append((switch, len(spanned)))
        return cuts

    def switches(self) -> Iterator[SwitchId]:
        for level in range(1, self.levels + 1):
            for index in range(self.size >> level):
                yield SwitchId(level, index)

    def parent(self, switch: SwitchId) -> SwitchId:
        if switch.level >= self.levels:
            raise NoCError(f"{switch} is the root; no parent")
        return SwitchId(switch.level + 1, switch.index // 2)

    def children(self, switch: SwitchId) -> Tuple[SwitchId, SwitchId]:
        if switch.level <= 1:
            raise NoCError(f"{switch} is a leaf parent; children are leaves")
        return (SwitchId(switch.level - 1, switch.index * 2),
                SwitchId(switch.level - 1, switch.index * 2 + 1))

    def leaf_parent(self, leaf: int) -> SwitchId:
        self._check_leaf(leaf)
        return SwitchId(1, leaf // 2)

    def subtree_range(self, switch: SwitchId) -> Tuple[int, int]:
        """[lo, hi) leaf range under a switch."""
        span = 1 << switch.level
        return switch.index * span, (switch.index + 1) * span

    def covers(self, switch: SwitchId, leaf: int) -> bool:
        lo, hi = self.subtree_range(switch)
        return lo <= leaf < hi

    def route_hops(self, src: int, dst: int) -> int:
        """Contention-free hop count between two leaves."""
        self._check_leaf(src)
        self._check_leaf(dst)
        if src == dst:
            return 0
        # Climb to the lowest common ancestor, then descend.
        lca_level = (src ^ dst).bit_length()
        return 2 * lca_level

    def common_ancestor(self, src: int, dst: int) -> SwitchId:
        level = max(1, (src ^ dst).bit_length())
        return SwitchId(level, src >> level)

    def links_on_path(self, src: int, dst: int) -> List[Tuple[SwitchId, str]]:
        """(switch, direction) pairs traversed from src to dst.

        Directions are "up" (towards the root, leaving the switch) and
        "down" (towards the leaves).  Used by the analytic bandwidth
        model to find shared tree links.
        """
        if src == dst:
            return []
        lca = self.common_ancestor(src, dst)
        path: List[Tuple[SwitchId, str]] = []
        cursor = self.leaf_parent(src)
        while cursor.level < lca.level:
            path.append((cursor, "up"))
            cursor = self.parent(cursor)
        # Descend: record each switch we leave downward.
        down: List[Tuple[SwitchId, str]] = []
        cursor = self.leaf_parent(dst)
        while cursor.level < lca.level:
            down.append((cursor, "down"))
            cursor = self.parent(cursor)
        down.append((lca, "down"))
        path.extend(reversed(down))
        return path

    def _check_leaf(self, leaf: int) -> None:
        if not (0 <= leaf < self.size):
            raise NoCError(f"leaf {leaf} outside tree of {self.size}")

    def __repr__(self) -> str:
        return (f"BFTopology({self.n_leaves} leaves, {self.levels} levels, "
                f"up={self.up_links})")
