"""Leaf interfaces: the standard page-to-network adapter (Sec. 4.1, 4.3).

Every page talks to the linking network through an identical leaf
interface (~500 LUTs).  Outbound stream ports have *destination
configuration registers* holding the (leaf, port) each token should be
addressed to; the pre-linker sets them by sending control packets, so a
design can be re-linked — operators moved between pages, or swapped
between FPGA and softcore implementations — without recompiling any
page.  Inbound packets demultiplex by destination port into per-stream
FIFOs.

Reliable mode
-------------

A deployed overlay must survive in-flight corruption and loss.  With
``reliable=True`` the leaf adds a selective-repeat recovery layer on
top of the existing per-link sequence numbers:

* outbound data flits carry a payload CRC; a receiver silently drops
  any flit whose payload no longer matches (corruption becomes loss);
* the sender keeps every unacknowledged flit in a retransmission
  buffer; the receiver returns a per-flit :class:`AckPacket` for every
  data flit it accepts — including out-of-order and duplicate arrivals
  (so lost acks self-heal), which is what makes the scheme selective
  repeat: one lost flit never un-acknowledges the window behind it;
* the network simulator drives a per-flit timeout — an unacked flit is
  re-injected after ``retransmit_timeout`` cycles, up to
  ``max_retransmissions`` attempts, after which the link is declared
  broken with :class:`LinkTimeoutError`;
* the receive side detects sequence gaps with its reorder buffer and
  discards duplicates, so every stream's payloads are delivered exactly
  once, in order, whatever the loss/corruption pattern.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import LinkTimeoutError, NoCError
from repro.noc.packet import (
    AckPacket,
    ConfigPacket,
    DataPacket,
    Packet,
)


@dataclass(frozen=True)
class StreamBinding:
    """One output port's destination register value."""

    dest_leaf: int
    dest_port: int


class LeafInterface:
    """The network endpoint logic of one page.

    Args:
        leaf: leaf (page) number in the tree.
        n_ports: local stream ports (both directions share numbering).
        reliable: enable CRC + retransmission recovery (see module doc).
        retransmit_timeout: cycles an unacked flit waits before being
            re-injected (only meaningful with ``reliable=True``).
        max_retransmissions: retransmission budget per flit; exceeding
            it raises :class:`LinkTimeoutError`.
    """

    #: Register space offset distinguishing config from data ports.
    CONFIG_PORT_BASE = 128

    #: Register space offset for stream acknowledgements (reliable mode).
    ACK_PORT_BASE = 256

    def __init__(self, leaf: int, n_ports: int = 8,
                 reliable: bool = False, retransmit_timeout: int = 256,
                 max_retransmissions: int = 64):
        if n_ports < 1 or n_ports > LeafInterface.CONFIG_PORT_BASE:
            raise NoCError(f"leaf {leaf}: n_ports out of range")
        self.leaf = leaf
        self.n_ports = n_ports
        self.reliable = reliable
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmissions = max_retransmissions
        self.bindings: Dict[int, StreamBinding] = {}
        self.outbox: Deque[Packet] = deque()
        self.inboxes: Dict[int, Deque[int]] = {
            port: deque() for port in range(n_ports)}
        # Stream-order restoration: deflection can reorder packets in
        # flight, so senders stamp per-link sequence numbers and the
        # receiving leaf holds early arrivals in a reorder buffer.
        self._tx_seq: Dict[int, int] = {}
        # Receive-side state is keyed by (port, source leaf) so that
        # even ill-formed many-to-one traffic cannot wedge the buffer.
        self._rx_expected: Dict[Tuple[int, int], int] = {}
        self._rx_pending: Dict[Tuple[int, int], Dict[int, int]] = {}
        # Retransmission state (reliable mode): per-port unacked flits
        # as (dest_leaf, dest_port, payload) templates, the cycle each
        # was last put on the wire, and how often it was resent.
        self._unacked: Dict[int, Dict[int, Tuple[int, int, int]]] = {}
        self._last_tx: Dict[Tuple[int, int], int] = {}
        self._retx_count: Dict[Tuple[int, int], int] = {}
        # Flits whose retransmission is already waiting in the outbox:
        # the timer must not enqueue further copies behind them.
        self._queued_retx: set = set()
        # Running total of unacked flits (O(1) has_unacked) and a lower
        # bound on the next cycle any flit's ack timeout can expire, so
        # the per-cycle timer call is O(1) until a scan is actually due.
        self._unacked_total = 0
        self._retx_deadline: Optional[int] = None
        self.bounced = 0
        self.sent = 0
        self.received = 0
        self.retransmissions = 0
        self.crc_dropped = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0
        self.acks_received = 0

    # -- configuration ---------------------------------------------------

    def bind(self, out_port: int, dest_leaf: int, dest_port: int) -> None:
        """Directly set an output port's destination register."""
        self._check_port(out_port)
        self.bindings[out_port] = StreamBinding(dest_leaf, dest_port)

    def config_packet(self, out_port: int, dest_leaf: int,
                      dest_port: int) -> ConfigPacket:
        """Build the control packet that performs :meth:`bind` remotely."""
        self._check_port(out_port)
        return ConfigPacket(
            dest_leaf=self.leaf,
            dest_port=LeafInterface.CONFIG_PORT_BASE + out_port,
            payload=ConfigPacket.encode(dest_leaf, dest_port),
        )

    def _check_port(self, port: int) -> None:
        if not (0 <= port < self.n_ports):
            raise NoCError(f"leaf {self.leaf}: no port {port}")

    # -- traffic -----------------------------------------------------------

    def send(self, out_port: int, token: int) -> None:
        """Queue one token for the network using the port's binding."""
        self._check_port(out_port)
        binding = self.bindings.get(out_port)
        if binding is None:
            raise NoCError(
                f"leaf {self.leaf}: port {out_port} not linked; "
                f"did the pre-linker run?")
        seq = self._tx_seq.get(out_port, 0)
        self._tx_seq[out_port] = seq + 1
        packet = DataPacket(
            dest_leaf=binding.dest_leaf,
            dest_port=binding.dest_port,
            payload=token & 0xFFFFFFFF,
            src_leaf=self.leaf,
            src_port=out_port,
            seq=seq,
        )
        if self.reliable:
            packet.stamp_crc()
            self._unacked.setdefault(out_port, {})[seq] = (
                binding.dest_leaf, binding.dest_port, packet.payload)
            self._unacked_total += 1
        self.outbox.append(packet)

    def deliver(self, packet: Packet) -> Optional[Packet]:
        """Accept a packet from the network.

        Returns a packet to re-inject when this was a mis-deflected
        delivery (bounce), else None.
        """
        if packet.dest_leaf != self.leaf:
            # Deflection sent it down the wrong way: bounce it back.
            self.bounced += 1
            return packet
        if not packet.crc_ok():
            # Corrupted in flight: discard; the sender's retransmission
            # timer recovers the loss.
            self.crc_dropped += 1
            return None
        if packet.dest_port >= LeafInterface.ACK_PORT_BASE:
            self._accept_ack(packet)
            return None
        if packet.dest_port >= LeafInterface.CONFIG_PORT_BASE:
            port = packet.dest_port - LeafInterface.CONFIG_PORT_BASE
            self._check_port(port)
            leaf, dport = ConfigPacket.decode(packet.payload)
            self.bindings[port] = StreamBinding(leaf, dport)
        else:
            self._check_port(packet.dest_port)
            if not self._deliver_in_order(packet):
                return None           # duplicate: dropped (and re-acked)
        self.received += 1
        return None

    def _deliver_in_order(self, packet: Packet) -> bool:
        """Returns False when the packet was a duplicate (discarded)."""
        port = packet.dest_port
        if packet.seq < 0:
            self.inboxes[port].append(packet.payload)
            return True
        key = (port, packet.src_leaf)
        expected = self._rx_expected.get(key, 0)
        pending = self._rx_pending.setdefault(key, {})
        if self.reliable and (packet.seq < expected
                              or packet.seq in pending):
            # Retransmitted flit we already hold: the original ack was
            # lost (or slow); re-ack so the sender can purge it.
            self.duplicates_dropped += 1
            self._enqueue_ack(packet, packet.seq)
            return False
        if packet.seq == expected:
            self.inboxes[port].append(packet.payload)
            expected += 1
            while expected in pending:
                self.inboxes[port].append(pending.pop(expected))
                expected += 1
            self._rx_expected[key] = expected
        else:
            # Sequence gap: hold the early arrival in the reorder
            # buffer.  It is still acknowledged individually below, so
            # only the genuinely missing flits are ever resent.
            pending[packet.seq] = packet.payload
        if self.reliable:
            self._enqueue_ack(packet, packet.seq)
        return True

    def _enqueue_ack(self, packet: Packet, seq: int) -> None:
        if packet.src_leaf < 0 or packet.src_port < 0 or seq < 0:
            return
        ack = AckPacket(
            dest_leaf=packet.src_leaf,
            dest_port=LeafInterface.ACK_PORT_BASE + packet.src_port,
            payload=seq & 0xFFFFFFFF,
            src_leaf=self.leaf,
        ).stamp_crc()
        self.outbox.append(ack)
        self.acks_sent += 1

    def _accept_ack(self, packet: Packet) -> None:
        port = packet.dest_port - LeafInterface.ACK_PORT_BASE
        self._check_port(port)
        self.acks_received += 1
        seq = packet.payload
        unacked = self._unacked.get(port)
        if unacked is not None and seq in unacked:
            del unacked[seq]
            self._unacked_total -= 1
            self._last_tx.pop((port, seq), None)
            self._retx_count.pop((port, seq), None)
            self._queued_retx.discard((port, seq))

    # -- retransmission (driven by the network simulator's clock) ----------

    def note_transmitted(self, packet: Packet, cycle: int) -> None:
        """Record that a flit of ours went on the wire this cycle."""
        if (self.reliable and isinstance(packet, DataPacket)
                and packet.seq >= 0 and packet.src_leaf == self.leaf):
            self._last_tx[(packet.src_port, packet.seq)] = cycle
            self._queued_retx.discard((packet.src_port, packet.seq))
            deadline = cycle + self.retransmit_timeout
            if self._retx_deadline is None or deadline < self._retx_deadline:
                self._retx_deadline = deadline

    def has_unacked(self) -> bool:
        return self._unacked_total > 0

    def unacked_count(self) -> int:
        return self._unacked_total

    def service_retransmissions(self, cycle: int) -> int:
        """Re-inject flits whose ack timeout expired; returns how many.

        The scan over unacked flits only runs once the precomputed
        deadline (earliest possible expiry, maintained by
        :meth:`note_transmitted`) has passed; a timeout can only expire
        ``retransmit_timeout`` cycles after a transmission, so skipping
        earlier cycles is behaviour-preserving — those scans would have
        re-injected nothing.
        """
        if not self.reliable or self._unacked_total == 0:
            return 0
        if self._retx_deadline is None or cycle < self._retx_deadline:
            return 0
        resent = 0
        for port, seqs in self._unacked.items():
            for seq in sorted(seqs):
                last = self._last_tx.get((port, seq))
                if last is None or cycle - last < self.retransmit_timeout:
                    continue
                if (port, seq) in self._queued_retx:
                    continue          # a copy is already waiting to inject
                count = self._retx_count.get((port, seq), 0) + 1
                if count > self.max_retransmissions:
                    raise LinkTimeoutError(
                        f"leaf {self.leaf} port {port}: flit seq {seq} "
                        f"unacknowledged after {self.max_retransmissions} "
                        f"retransmissions; link is down",
                        leaf=self.leaf, port=port, seq=seq,
                        attempts=count)
                self._retx_count[(port, seq)] = count
                dest_leaf, dest_port, payload = seqs[seq]
                self.outbox.append(DataPacket(
                    dest_leaf=dest_leaf, dest_port=dest_port,
                    payload=payload, src_leaf=self.leaf, src_port=port,
                    seq=seq).stamp_crc())
                # The timer restarts when the copy actually hits the
                # wire (note_transmitted); until then _queued_retx
                # keeps this flit out of further timer rounds.
                self._queued_retx.add((port, seq))
                self.retransmissions += 1
                resent += 1
        # Recompute the earliest next expiry among flits still armed
        # (transmitted, not already waiting in the outbox as a queued
        # retransmission — those re-arm via note_transmitted).
        timeout = self.retransmit_timeout
        queued = self._queued_retx
        last_tx = self._last_tx
        deadline = None
        for port, seqs in self._unacked.items():
            for seq in seqs:
                if (port, seq) in queued:
                    continue
                last = last_tx.get((port, seq))
                if last is None:
                    continue
                due = last + timeout
                if deadline is None or due < deadline:
                    deadline = due
        self._retx_deadline = deadline
        return resent

    def pop_injection(self) -> Optional[Packet]:
        """Packet to put on the up-link this cycle, if any."""
        if self.outbox:
            self.sent += 1
            return self.outbox.popleft()
        return None

    def push_front(self, packet: Packet) -> None:
        """Put a bounced packet at the head of the injection queue."""
        self.outbox.appendleft(packet)

    def reset_stream(self, out_port: int) -> None:
        """Restart a link's sequence numbering (after re-linking)."""
        self._check_port(out_port)
        self._tx_seq[out_port] = 0

    def tokens(self, port: int) -> List[int]:
        """Drain and return the tokens delivered to an input port."""
        self._check_port(port)
        inbox = self.inboxes[port]
        out = list(inbox)
        inbox.clear()
        return out

    def __repr__(self) -> str:
        mode = ", reliable" if self.reliable else ""
        return (f"LeafInterface(leaf={self.leaf}, ports={self.n_ports}, "
                f"{len(self.bindings)} bound{mode})")
