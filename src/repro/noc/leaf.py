"""Leaf interfaces: the standard page-to-network adapter (Sec. 4.1, 4.3).

Every page talks to the linking network through an identical leaf
interface (~500 LUTs).  Outbound stream ports have *destination
configuration registers* holding the (leaf, port) each token should be
addressed to; the pre-linker sets them by sending control packets, so a
design can be re-linked — operators moved between pages, or swapped
between FPGA and softcore implementations — without recompiling any
page.  Inbound packets demultiplex by destination port into per-stream
FIFOs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import NoCError
from repro.noc.packet import ConfigPacket, DataPacket, Packet


@dataclass(frozen=True)
class StreamBinding:
    """One output port's destination register value."""

    dest_leaf: int
    dest_port: int


class LeafInterface:
    """The network endpoint logic of one page.

    Args:
        leaf: leaf (page) number in the tree.
        n_ports: local stream ports (both directions share numbering).
    """

    #: Register space offset distinguishing config from data ports.
    CONFIG_PORT_BASE = 128

    def __init__(self, leaf: int, n_ports: int = 8):
        if n_ports < 1 or n_ports > LeafInterface.CONFIG_PORT_BASE:
            raise NoCError(f"leaf {leaf}: n_ports out of range")
        self.leaf = leaf
        self.n_ports = n_ports
        self.bindings: Dict[int, StreamBinding] = {}
        self.outbox: Deque[Packet] = deque()
        self.inboxes: Dict[int, Deque[int]] = {
            port: deque() for port in range(n_ports)}
        # Stream-order restoration: deflection can reorder packets in
        # flight, so senders stamp per-link sequence numbers and the
        # receiving leaf holds early arrivals in a reorder buffer.
        self._tx_seq: Dict[int, int] = {}
        # Receive-side state is keyed by (port, source leaf) so that
        # even ill-formed many-to-one traffic cannot wedge the buffer.
        self._rx_expected: Dict[Tuple[int, int], int] = {}
        self._rx_pending: Dict[Tuple[int, int], Dict[int, int]] = {}
        self.bounced = 0
        self.sent = 0
        self.received = 0

    # -- configuration ---------------------------------------------------

    def bind(self, out_port: int, dest_leaf: int, dest_port: int) -> None:
        """Directly set an output port's destination register."""
        self._check_port(out_port)
        self.bindings[out_port] = StreamBinding(dest_leaf, dest_port)

    def config_packet(self, out_port: int, dest_leaf: int,
                      dest_port: int) -> ConfigPacket:
        """Build the control packet that performs :meth:`bind` remotely."""
        self._check_port(out_port)
        return ConfigPacket(
            dest_leaf=self.leaf,
            dest_port=LeafInterface.CONFIG_PORT_BASE + out_port,
            payload=ConfigPacket.encode(dest_leaf, dest_port),
        )

    def _check_port(self, port: int) -> None:
        if not (0 <= port < self.n_ports):
            raise NoCError(f"leaf {self.leaf}: no port {port}")

    # -- traffic -----------------------------------------------------------

    def send(self, out_port: int, token: int) -> None:
        """Queue one token for the network using the port's binding."""
        self._check_port(out_port)
        binding = self.bindings.get(out_port)
        if binding is None:
            raise NoCError(
                f"leaf {self.leaf}: port {out_port} not linked; "
                f"did the pre-linker run?")
        seq = self._tx_seq.get(out_port, 0)
        self._tx_seq[out_port] = seq + 1
        self.outbox.append(DataPacket(
            dest_leaf=binding.dest_leaf,
            dest_port=binding.dest_port,
            payload=token & 0xFFFFFFFF,
            src_leaf=self.leaf,
            seq=seq,
        ))

    def deliver(self, packet: Packet) -> Optional[Packet]:
        """Accept a packet from the network.

        Returns a packet to re-inject when this was a mis-deflected
        delivery (bounce), else None.
        """
        if packet.dest_leaf != self.leaf:
            # Deflection sent it down the wrong way: bounce it back.
            self.bounced += 1
            return packet
        if packet.dest_port >= LeafInterface.CONFIG_PORT_BASE:
            port = packet.dest_port - LeafInterface.CONFIG_PORT_BASE
            self._check_port(port)
            leaf, dport = ConfigPacket.decode(packet.payload)
            self.bindings[port] = StreamBinding(leaf, dport)
        else:
            self._check_port(packet.dest_port)
            self._deliver_in_order(packet)
        self.received += 1
        return None

    def _deliver_in_order(self, packet: Packet) -> None:
        port = packet.dest_port
        if packet.seq < 0:
            self.inboxes[port].append(packet.payload)
            return
        key = (port, packet.src_leaf)
        expected = self._rx_expected.get(key, 0)
        pending = self._rx_pending.setdefault(key, {})
        if packet.seq == expected:
            self.inboxes[port].append(packet.payload)
            expected += 1
            while expected in pending:
                self.inboxes[port].append(pending.pop(expected))
                expected += 1
            self._rx_expected[key] = expected
        else:
            pending[packet.seq] = packet.payload

    def pop_injection(self) -> Optional[Packet]:
        """Packet to put on the up-link this cycle, if any."""
        if self.outbox:
            self.sent += 1
            return self.outbox.popleft()
        return None

    def push_front(self, packet: Packet) -> None:
        """Put a bounced packet at the head of the injection queue."""
        self.outbox.appendleft(packet)

    def reset_stream(self, out_port: int) -> None:
        """Restart a link's sequence numbering (after re-linking)."""
        self._check_port(out_port)
        self._tx_seq[out_port] = 0

    def tokens(self, port: int) -> List[int]:
        """Drain and return the tokens delivered to an input port."""
        self._check_port(port)
        inbox = self.inboxes[port]
        out = list(inbox)
        inbox.clear()
        return out

    def __repr__(self) -> str:
        return (f"LeafInterface(leaf={self.leaf}, ports={self.n_ports}, "
                f"{len(self.bindings)} bound)")
