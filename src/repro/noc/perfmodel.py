"""Analytic -O1 performance model: NoC bandwidth bottlenecks.

The paper observes (Sec. 7.4) that -O1 designs run 1.5-10x slower than
monolithic ones, mostly from the single leaf-interface port throttling
operators that want more bandwidth, plus sharing on the modest BFT.

For one application input, the model computes the steady-state cycle
count as the maximum over three classes of bottleneck:

* **compute** — each operator's scheduled cycles per activation (at the
  200 MHz overlay clock);
* **leaf serialisation** — every token in or out of a page crosses its
  single 32-bit leaf port, one word per cycle;
* **tree links** — tokens whose route crosses a tree link share that
  link's capacity (``up_links`` words per cycle).

The cycle-level simulator (:mod:`repro.noc.netsim`) is used in tests to
confirm the analytic numbers on small traffic samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dataflow.graph import DataflowGraph
from repro.hls.schedule import Schedule
from repro.hls import tech
from repro.noc.bft import BFTopology
from repro.noc.linking import INTERFACE_LEAF, LinkConfiguration


@dataclass
class Bottleneck:
    """One binding constraint found by the model."""

    kind: str          # "compute" | "leaf" | "tree"
    where: str
    cycles: float


@dataclass
class NoCPerformanceModel:
    """Per-input performance of one -O1 mapping.

    Args:
        graph: the application graph.
        schedules: operator -> its HLS schedule (token counts/cycles per
            activation).
        config: the link configuration (page assignment).
        activations_per_input: how many operator activations one
            application input causes (usually 1: one frame per
            activation).
        clock_mhz: overlay clock (200 MHz in the paper).
    """

    graph: DataflowGraph
    schedules: Dict[str, Schedule]
    config: LinkConfiguration
    activations_per_input: float = 1.0
    clock_mhz: float = tech.OVERLAY_CLOCK_MHZ

    def _leaf_tokens(self) -> Dict[int, float]:
        """Words crossing each leaf's single network port, per input."""
        tokens: Dict[int, float] = {}
        for name, schedule in self.schedules.items():
            leaf = self.config.leaf_of[name]
            moved = sum(schedule.port_tokens.values())
            tokens[leaf] = tokens.get(leaf, 0.0) + \
                moved * self.activations_per_input
        # The interface leaf moves every external token.
        external = 0.0
        for name, schedule in self.schedules.items():
            for ext in self.graph.external_inputs.values():
                if ext.inner.operator == name:
                    external += schedule.tokens_on(ext.inner.name) \
                        * self.activations_per_input
            for ext in self.graph.external_outputs.values():
                if ext.inner.operator == name:
                    external += schedule.tokens_on(ext.inner.name) \
                        * self.activations_per_input
        if external:
            tokens[INTERFACE_LEAF] = tokens.get(INTERFACE_LEAF, 0.0) \
                + external
        return tokens

    def _tree_tokens(self, topology: BFTopology) -> Dict[Tuple, float]:
        """Words crossing each (switch, direction) tree link, per input."""
        usage: Dict[Tuple, float] = {}

        def add_route(src: int, dst: int, words: float) -> None:
            for hop in topology.links_on_path(src, dst):
                usage[hop] = usage.get(hop, 0.0) + words

        for link in self.graph.links.values():
            src = self.config.leaf_of[link.source.operator]
            dst = self.config.leaf_of[link.sink.operator]
            words = (self.schedules[link.source.operator]
                     .tokens_on(link.source.name)
                     * self.activations_per_input)
            add_route(src, dst, words)
        for name, ext in self.graph.external_inputs.items():
            dst = self.config.leaf_of[ext.inner.operator]
            words = (self.schedules[ext.inner.operator]
                     .tokens_on(ext.inner.name)
                     * self.activations_per_input)
            add_route(INTERFACE_LEAF, dst, words)
        for name, ext in self.graph.external_outputs.items():
            src = self.config.leaf_of[ext.inner.operator]
            words = (self.schedules[ext.inner.operator]
                     .tokens_on(ext.inner.name)
                     * self.activations_per_input)
            add_route(src, INTERFACE_LEAF, words)
        return usage

    def bottlenecks(self) -> list:
        """All constraints, sorted slowest first."""
        found = []
        for name, schedule in self.schedules.items():
            found.append(Bottleneck(
                "compute", name,
                schedule.total_cycles * self.activations_per_input))
        n_leaves = max(list(self.config.leaf_of.values())
                       + [INTERFACE_LEAF]) + 1
        topology = BFTopology(max(2, n_leaves))
        for leaf, words in self._leaf_tokens().items():
            found.append(Bottleneck("leaf", f"leaf{leaf}", words))
        for (switch, direction), words in self._tree_tokens(
                topology).items():
            found.append(Bottleneck(
                "tree", f"{switch}:{direction}",
                words / topology.up_links))
        found.sort(key=lambda b: -b.cycles)
        return found

    def cycles_per_input(self) -> float:
        """Steady-state cycles to process one application input."""
        ranked = self.bottlenecks()
        return ranked[0].cycles if ranked else 0.0

    def seconds_per_input(self) -> float:
        return self.cycles_per_input() / (self.clock_mhz * 1e6)

    def dominant(self) -> Optional[Bottleneck]:
        ranked = self.bottlenecks()
        return ranked[0] if ranked else None
