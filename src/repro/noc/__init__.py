"""The linking network (Sec. 4.3): a deflection-routed butterfly fat tree.

PLD links separately compiled pages with a Hoplite-style [34, 18, 46]
packet-switched NoC in a BFT topology [32] at 200 MHz with 32-bit
payloads.  This package provides:

* :mod:`repro.noc.packet` — single-flit packets (data + control);
* :mod:`repro.noc.bft` — the butterfly-fat-tree topology;
* :mod:`repro.noc.netsim` — a cycle-level simulator with age-based
  deflection routing;
* :mod:`repro.noc.leaf` — leaf interfaces with destination-config
  registers, re-linkable by control packets without recompiling pages;
* :mod:`repro.noc.linking` — software linking: turn a dataflow graph +
  page assignment into the configuration packets that wire it up;
* :mod:`repro.noc.perfmodel` — the analytic bandwidth model used for
  -O1 performance estimates, cross-checked against the simulator.
"""

from repro.noc.packet import ConfigPacket, DataPacket, Packet
from repro.noc.bft import BFTopology
from repro.noc.leaf import LeafInterface, StreamBinding
from repro.noc.netsim import NetworkSimulator
from repro.noc.linking import LinkConfiguration, build_link_configuration
from repro.noc.perfmodel import NoCPerformanceModel

__all__ = [
    "Packet",
    "DataPacket",
    "ConfigPacket",
    "BFTopology",
    "LeafInterface",
    "StreamBinding",
    "NetworkSimulator",
    "LinkConfiguration",
    "build_link_configuration",
    "NoCPerformanceModel",
]
