"""Synthetic traffic patterns and load-latency characterisation.

Standard NoC-evaluation machinery for the linking network: classic
traffic patterns (uniform random, bit-reversal/complement, hotspot,
neighbour) and a load sweep that measures delivered throughput and mean
latency at increasing injection rates — the curve whose saturation
point tells you how much stream bandwidth the modest BFT really offers
(the paper's Sec. 7.4 bandwidth discussion, measured).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

from repro.errors import NoCError
from repro.noc.bft import BFTopology
from repro.noc.leaf import LeafInterface
from repro.noc.netsim import NetworkSimulator

Pattern = Callable[[int, int], int]


def uniform_random(seed: int = 1) -> Pattern:
    """Each source sends to a uniformly random other leaf."""
    rng = random.Random(seed)

    def dest(src: int, n: int) -> int:
        choice = rng.randrange(n - 1)
        return choice if choice < src else choice + 1

    return dest


def bit_reversal(src: int, n: int) -> int:
    """Destination = bit-reversed source (adversarial for trees)."""
    bits = max(1, (n - 1).bit_length())
    rev = int(format(src, f"0{bits}b")[::-1], 2)
    return rev % n


def bit_complement(src: int, n: int) -> int:
    """Destination = complemented source (all traffic crosses the root)."""
    return (n - 1) ^ src


def neighbour(src: int, n: int) -> int:
    """Destination = next leaf (best case: one switch hop)."""
    return (src + 1) % n


def hotspot(target: int = 0) -> Pattern:
    """Everyone sends to one leaf (the DMA-interface worst case)."""

    def dest(src: int, n: int) -> int:
        return target if target != src else (target + 1) % n

    return dest


@dataclass
class LoadPoint:
    """One point on the load-latency curve."""

    offered_rate: float        # packets / leaf / cycle attempted
    delivered_rate: float      # packets / cycle network-wide
    mean_latency: float
    deflections: int


def characterize(pattern: Pattern, n_leaves: int = 16,
                 rates: List[float] = (0.05, 0.1, 0.2, 0.4, 0.8),
                 packets_per_leaf: int = 60,
                 seed: int = 7) -> List[LoadPoint]:
    """Sweep injection rate; measure throughput/latency per point.

    Injection pacing is approximated by interleaving idle cycles: at
    offered rate r, each leaf queues one packet every ``1/r`` cycles'
    worth of simulation (packets are pre-staged; the single up-link
    already limits injection to 1/cycle, so r is capped at 1).
    """
    points: List[LoadPoint] = []
    for rate in rates:
        if not (0 < rate <= 1.0):
            raise NoCError(f"offered rate {rate} outside (0, 1]")
        topo = BFTopology(n_leaves)
        leaves = {i: LeafInterface(i, n_ports=2) for i in range(n_leaves)}
        sim = NetworkSimulator(topo, leaves)
        # Bind every source port once, then stage the packets.
        for src in range(n_leaves):
            leaves[src].bind(0, dest_leaf=pattern(src, n_leaves),
                             dest_port=0)
        # Interleave injection with pacing: run the clock while
        # queueing packets at the offered rate.
        interval = max(1, round(1.0 / rate))
        remaining = {src: packets_per_leaf for src in range(n_leaves)}
        cycle = 0
        while any(remaining.values()) or sim._in_flight or any(
                leaves[i].outbox for i in range(n_leaves)):
            if cycle % interval == 0:
                for src in range(n_leaves):
                    if remaining[src]:
                        leaves[src].send(0, (src << 16) | remaining[src])
                        remaining[src] -= 1
            sim.step()
            cycle += 1
            if cycle > 2_000_000:
                raise NoCError("traffic characterisation did not drain")
        # Drain stragglers.
        sim.run(max_cycles=2_000_000)
        total = len(sim.delivered)
        points.append(LoadPoint(
            offered_rate=rate,
            delivered_rate=total / max(1, sim.cycle),
            mean_latency=sim.mean_latency(),
            deflections=sim.total_deflections))
    return points


def saturation_throughput(points: List[LoadPoint]) -> float:
    """Highest delivered rate across the sweep (packets/cycle)."""
    return max(p.delivered_rate for p in points) if points else 0.0
