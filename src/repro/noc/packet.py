"""Single-flit NoC packets.

Hoplite-style networks keep routers tiny by making every packet a single
flit: destination header + one 32-bit payload word.  Control packets
address a leaf's configuration registers instead of its data FIFOs,
which is how operators are re-linked without recompilation (Sec. 4.3).

For resilience, data and acknowledgement flits also carry a payload CRC
(a few header bits in hardware): a leaf drops any flit whose payload no
longer matches its CRC, turning in-flight corruption into a loss that
the sequence-number/retransmission layer recovers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


def payload_crc(dest_leaf: int, dest_port: int, payload: int,
                seq: int) -> int:
    """16-bit CRC over the fields corruption could silently change."""
    raw = (f"{dest_leaf}:{dest_port}:{payload & 0xFFFFFFFF}:{seq}"
           ).encode()
    return zlib.crc32(raw) & 0xFFFF


@dataclass
class Packet:
    """Base single-flit packet."""

    dest_leaf: int
    dest_port: int
    payload: int
    src_leaf: int = -1
    src_port: int = -1              # sender's output port (for acks)
    #: Cycle of injection, stamped by the simulator (for latency stats).
    #: -1 means "not injected yet": packets can legitimately be injected
    #: at cycle 0, so 0 would be ambiguous with a real stamp.
    injected_at: int = -1
    age: int = 0                    # deflection-priority age
    hops: int = 0
    #: Per-link sequence number.  Deflection routing can reorder packets
    #: in flight; leaf interfaces restore stream order with a small
    #: reorder buffer keyed on this field (-1 = unordered, e.g. config).
    seq: int = -1
    #: Payload CRC stamped at send time (-1 = unprotected).  Fault
    #: injection flips payload bits without fixing this, so receivers
    #: detect corruption and discard the flit.
    crc: int = -1

    def __post_init__(self):
        if self.dest_leaf < 0:
            raise ValueError("packet needs a non-negative destination leaf")
        if not (0 <= self.payload < 2 ** 32):
            raise ValueError("payload must be an unsigned 32-bit word")

    def stamp_crc(self) -> "Packet":
        """Protect the payload; returns self for chaining."""
        self.crc = payload_crc(self.dest_leaf, self.dest_port,
                               self.payload, self.seq)
        return self

    def crc_ok(self) -> bool:
        """True when unprotected or the payload still matches its CRC."""
        if self.crc < 0:
            return True
        return self.crc == payload_crc(self.dest_leaf, self.dest_port,
                                       self.payload, self.seq)


@dataclass
class DataPacket(Packet):
    """A stream token in flight."""


@dataclass
class ConfigPacket(Packet):
    """A control packet writing one leaf configuration register.

    ``dest_port`` selects the register (one per leaf output port);
    ``payload`` packs the target leaf and port the register should
    forward to: ``(target_leaf << 8) | target_port``.
    """

    @staticmethod
    def encode(target_leaf: int, target_port: int) -> int:
        if not (0 <= target_port < 256):
            raise ValueError("target port must fit in 8 bits")
        return (target_leaf << 8) | target_port

    @staticmethod
    def decode(payload: int):
        return payload >> 8, payload & 0xFF


@dataclass
class AckPacket(Packet):
    """A per-flit acknowledgement for one stream (reliable links).

    Sent by the receiving leaf back to ``(src_leaf, src_port)`` of the
    data stream for every data flit it accepts — in-order, early, or
    duplicate; ``payload`` is that flit's sequence number, letting the
    sender purge exactly that entry from its retransmission buffer
    (selective repeat).  ``dest_port`` is
    ``ACK_PORT_BASE + <sender's output port>``.
    """
