"""Single-flit NoC packets.

Hoplite-style networks keep routers tiny by making every packet a single
flit: destination header + one 32-bit payload word.  Control packets
address a leaf's configuration registers instead of its data FIFOs,
which is how operators are re-linked without recompilation (Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Packet:
    """Base single-flit packet."""

    dest_leaf: int
    dest_port: int
    payload: int
    src_leaf: int = -1
    injected_at: int = 0            # cycle of injection (for latency stats)
    age: int = 0                    # deflection-priority age
    hops: int = 0
    #: Per-link sequence number.  Deflection routing can reorder packets
    #: in flight; leaf interfaces restore stream order with a small
    #: reorder buffer keyed on this field (-1 = unordered, e.g. config).
    seq: int = -1

    def __post_init__(self):
        if self.dest_leaf < 0:
            raise ValueError("packet needs a non-negative destination leaf")
        if not (0 <= self.payload < 2 ** 32):
            raise ValueError("payload must be an unsigned 32-bit word")


@dataclass
class DataPacket(Packet):
    """A stream token in flight."""


@dataclass
class ConfigPacket(Packet):
    """A control packet writing one leaf configuration register.

    ``dest_port`` selects the register (one per leaf output port);
    ``payload`` packs the target leaf and port the register should
    forward to: ``(target_leaf << 8) | target_port``.
    """

    @staticmethod
    def encode(target_leaf: int, target_port: int) -> int:
        if not (0 <= target_port < 256):
            raise ValueError("target port must fit in 8 bits")
        return (target_leaf << 8) | target_port

    @staticmethod
    def decode(payload: int):
        return payload >> 8, payload & 0xFF
