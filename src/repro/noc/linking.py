"""Software linking: wiring separately compiled pages together (Sec. 4.3).

The pre-linker/loader (``pld``) turns a dataflow graph plus a
page-assignment into leaf-interface configuration: each operator output
port gets a local port index on its page's leaf, and its destination
register is pointed at the consumer's (leaf, port).  The whole link step
is a handful of control packets per page — this is why re-linking takes
seconds while recompiling takes minutes.

External graph ports bind to the DMA interface leaf (leaf 0), which the
host drives through the platform layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NoCError
from repro.dataflow.graph import DataflowGraph
from repro.noc.leaf import LeafInterface
from repro.noc.packet import ConfigPacket

#: Leaf number reserved for the DMA engine / host interface.
INTERFACE_LEAF = 0


@dataclass(frozen=True)
class PortAddress:
    """A (leaf, local port) pair on the network."""

    leaf: int
    port: int


@dataclass
class LinkConfiguration:
    """The linking plan for one application.

    Attributes:
        graph_name: application name.
        leaf_of: operator -> leaf number.
        out_ports: (operator, port) -> local output index on its leaf.
        in_ports: (operator, port) -> local input index on its leaf.
        bindings: (src leaf, src out port) -> destination address.
        external_in: graph input name -> consumer address.
        external_out: graph output name -> local port on the interface
            leaf where results arrive.
    """

    graph_name: str
    leaf_of: Dict[str, int] = field(default_factory=dict)
    out_ports: Dict[Tuple[str, str], int] = field(default_factory=dict)
    in_ports: Dict[Tuple[str, str], int] = field(default_factory=dict)
    bindings: Dict[Tuple[int, int], PortAddress] = field(default_factory=dict)
    external_in: Dict[str, PortAddress] = field(default_factory=dict)
    external_out: Dict[str, int] = field(default_factory=dict)

    def ports_on_leaf(self, leaf: int) -> int:
        """How many local ports (max of in/out counts) a leaf needs."""
        n_out = sum(1 for (op, _p), idx in self.out_ports.items()
                    if self.leaf_of[op] == leaf)
        n_in = sum(1 for (op, _p), idx in self.in_ports.items()
                   if self.leaf_of[op] == leaf)
        return max(n_out, n_in, 1)

    def config_packets(self) -> List[ConfigPacket]:
        """Control packets that install every binding."""
        packets = []
        for (leaf, out_port), dest in sorted(self.bindings.items()):
            packets.append(ConfigPacket(
                dest_leaf=leaf,
                dest_port=LeafInterface.CONFIG_PORT_BASE + out_port,
                payload=ConfigPacket.encode(dest.leaf, dest.port),
            ))
        return packets

    def apply_direct(self, leaves: Dict[int, LeafInterface]) -> None:
        """Install bindings directly (host backdoor, used in tests)."""
        for (leaf, out_port), dest in self.bindings.items():
            leaves[leaf].bind(out_port, dest.leaf, dest.port)

    def diff(self, other: Optional["LinkConfiguration"]
             ) -> Dict[Tuple[int, int], PortAddress]:
        """Bindings of this configuration that differ from ``other``.

        Returns the (src leaf, src port) -> destination entries that are
        new or changed relative to ``other`` (all of them when ``other``
        is None).  Bindings only present in ``other`` are not reported:
        a stale destination register on an untouched leaf is harmless —
        nothing produces into it any more.
        """
        changed: Dict[Tuple[int, int], PortAddress] = {}
        for key, dest in self.bindings.items():
            if other is None or other.bindings.get(key) != dest:
                changed[key] = dest
        return changed

    def delta_config_packets(self, reloaded_leaves,
                             previous: Optional["LinkConfiguration"] = None
                             ) -> List[ConfigPacket]:
        """Packets for a delta relink after partial reconfiguration.

        Reloading a page wipes that leaf's output-destination registers,
        so every binding whose *source* leaf was reloaded must be
        resent; bindings into a reloaded page live in the producers'
        registers and stay resident.  On top of that, any binding that
        changed relative to ``previous`` (a remap, a new link) is sent
        regardless of which leaf it lives on.  This is the seconds-scale
        relink of Sec. 4.3 shrunk further: for a one-operator edit the
        burst is just that operator's output bindings.
        """
        reloaded = set(reloaded_leaves)
        changed = self.diff(previous)
        packets = []
        for (leaf, out_port), dest in sorted(self.bindings.items()):
            if leaf in reloaded or (leaf, out_port) in changed:
                packets.append(ConfigPacket(
                    dest_leaf=leaf,
                    dest_port=LeafInterface.CONFIG_PORT_BASE + out_port,
                    payload=ConfigPacket.encode(dest.leaf, dest.port),
                ))
        return packets


def build_link_configuration(graph: DataflowGraph,
                             page_of: Dict[str, int],
                             interface_leaf: int = INTERFACE_LEAF
                             ) -> LinkConfiguration:
    """Run the pre-linker: allocate local ports and destination bindings.

    Args:
        graph: validated dataflow graph.
        page_of: operator name -> page number (page numbers are leaf
            numbers; the interface leaf is reserved).

    Raises:
        NoCError: missing assignments, or two operators on one page.
    """
    graph.validate()
    missing = set(graph.operators) - set(page_of)
    if missing:
        raise NoCError(f"no page assignment for: {sorted(missing)}")
    used: Dict[int, str] = {}
    for op, page in page_of.items():
        if page == interface_leaf:
            raise NoCError(
                f"operator {op!r} assigned to the interface leaf")
        if page in used:
            raise NoCError(
                f"operators {used[page]!r} and {op!r} both on page {page}")
        used[page] = op

    config = LinkConfiguration(graph.name, leaf_of=dict(page_of))

    # Local port allocation, per leaf, in declaration order.
    for name, op in graph.operators.items():
        for index, port in enumerate(op.outputs):
            config.out_ports[(name, port)] = index
        for index, port in enumerate(op.inputs):
            config.in_ports[(name, port)] = index

    # Internal links: producer out-port register -> consumer in-port.
    for link in graph.links.values():
        src_leaf = page_of[link.source.operator]
        src_port = config.out_ports[(link.source.operator,
                                     link.source.name)]
        dst = PortAddress(page_of[link.sink.operator],
                          config.in_ports[(link.sink.operator,
                                           link.sink.name)])
        config.bindings[(src_leaf, src_port)] = dst

    # External inputs: DMA interface sends into consumer ports; the
    # interface leaf allocates one local out-port per external input.
    for index, (name, ext) in enumerate(
            sorted(graph.external_inputs.items())):
        dst = PortAddress(page_of[ext.inner.operator],
                          config.in_ports[(ext.inner.operator,
                                           ext.inner.name)])
        config.external_in[name] = dst
        config.bindings[(interface_leaf, index)] = dst

    # External outputs: producer out-ports point at the interface leaf.
    for index, (name, ext) in enumerate(
            sorted(graph.external_outputs.items())):
        src_leaf = page_of[ext.inner.operator]
        src_port = config.out_ports[(ext.inner.operator, ext.inner.name)]
        config.bindings[(src_leaf, src_port)] = PortAddress(interface_leaf,
                                                            index)
        config.external_out[name] = index
    return config
