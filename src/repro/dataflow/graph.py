"""Operators and the top-level dataflow graph (Sec. 3.3).

A :class:`DataflowGraph` is the paper's ``top.cpp``: a set of named
:class:`Operator` nodes whose ports are wired together by streams, plus
graph-level input/output ports that the DMA engine feeds and drains.
Each operator carries its mapping pragma (``target=HW`` or ``target=RISCV``
with a page preference, Fig. 2(a)) and optional references to its HLS
specification so the toolflow can compile it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import DataflowError
from repro.dataflow.process import OpIO


#: Mapping targets understood by the toolflow pragmas.
TARGET_HW = "HW"
TARGET_RISCV = "RISCV"
_VALID_TARGETS = (TARGET_HW, TARGET_RISCV)


@dataclass(frozen=True)
class Port:
    """A named, directed port on an operator."""

    operator: str
    name: str
    direction: str  # "in" | "out"
    width: int = 32

    def __str__(self) -> str:
        return f"{self.operator}.{self.name}"


class Operator:
    """A streaming dataflow operator (one C kernel function).

    Args:
        name: unique operator name within the graph.
        body: generator function ``body(io)`` following the process
            protocol in :mod:`repro.dataflow.process`.
        inputs: input port names, in declaration order.
        outputs: output port names, in declaration order.
        target: mapping pragma, ``"HW"`` (FPGA page, -O1/-O3) or
            ``"RISCV"`` (softcore, -O0).
        page: preferred physical page number, or None for auto-assign.
        hls_spec: optional :class:`repro.hls.ir.OperatorSpec` used by the
            HLS and softcore compilers; functional simulation does not
            need it.  Benchmarks attach *paper-scale* specs here (full
            trip counts and array sizes) since scheduling and estimation
            are static analyses.
        sample_spec: optional reduced-workload spec (small trip counts)
            compiled for softcore *execution*; defaults to ``hls_spec``.
            The static structure (and hence the compile time) of the two
            is identical — only loop bounds differ.
        port_widths: optional per-port payload widths (default 32).
    """

    def __init__(self, name: str, body: Callable, inputs: Iterable[str],
                 outputs: Iterable[str], target: str = TARGET_HW,
                 page: Optional[int] = None, hls_spec=None,
                 port_widths: Optional[Dict[str, int]] = None,
                 sample_spec=None):
        if target not in _VALID_TARGETS:
            raise DataflowError(
                f"operator {name!r}: unknown target {target!r} "
                f"(expected one of {_VALID_TARGETS})")
        self.name = name
        self.body = body
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        if set(self.inputs) & set(self.outputs):
            raise DataflowError(
                f"operator {name!r}: port names must be unique across "
                f"inputs and outputs")
        self.target = target
        self.page = page
        self.hls_spec = hls_spec
        self.sample_spec = sample_spec if sample_spec is not None \
            else hls_spec
        widths = port_widths or {}
        self.port_widths = {p: widths.get(p, 32)
                            for p in self.inputs + self.outputs}

    def make_io(self) -> OpIO:
        """Build the request-constructing handle passed to the body."""
        return OpIO(self.inputs, self.outputs)

    def port(self, name: str) -> Port:
        """Look up a port descriptor by name."""
        if name in self.inputs:
            return Port(self.name, name, "in", self.port_widths[name])
        if name in self.outputs:
            return Port(self.name, name, "out", self.port_widths[name])
        raise DataflowError(f"operator {self.name!r} has no port {name!r}")

    def with_target(self, target: str, page: Optional[int] = None
                    ) -> "Operator":
        """Copy of this operator with a different mapping pragma.

        This is the paper's one-line pragma edit (Fig. 2(a) lines 3-4):
        the body, ports and HLS spec are shared, only the target changes.
        """
        return Operator(self.name, self.body, self.inputs, self.outputs,
                        target, self.page if page is None else page,
                        self.hls_spec, dict(self.port_widths),
                        self.sample_spec)

    def with_spec(self, hls_spec, sample_spec=None) -> "Operator":
        """Copy of this operator with edited IR (the incremental edit).

        The functional body is regenerated from the new sample spec via
        the IR interpreter so execution reflects the edit; ports, target
        and page preference are unchanged.  Port sets must match — an
        edit that changes an operator's interface is a graph change,
        not an operator edit.
        """
        from repro.hls.interp import make_body

        if hls_spec is None:
            raise DataflowError(
                f"operator {self.name!r}: with_spec needs a spec")
        sample = sample_spec if sample_spec is not None else hls_spec
        if (tuple(hls_spec.input_ports) != self.inputs
                or tuple(hls_spec.output_ports) != self.outputs):
            raise DataflowError(
                f"operator {self.name!r}: edited spec changes the port "
                f"interface ({list(hls_spec.input_ports)} -> "
                f"{list(hls_spec.output_ports)}); rewire the graph "
                f"instead")
        return Operator(self.name, make_body(sample), self.inputs,
                        self.outputs, self.target, self.page, hls_spec,
                        dict(self.port_widths), sample)

    def __repr__(self) -> str:
        return (f"Operator({self.name!r}, in={list(self.inputs)}, "
                f"out={list(self.outputs)}, target={self.target})")


def operator(name: str, inputs: Iterable[str], outputs: Iterable[str],
             target: str = TARGET_HW, page: Optional[int] = None,
             hls_spec=None, port_widths: Optional[Dict[str, int]] = None):
    """Decorator turning a generator function into an :class:`Operator`.

    .. code-block:: python

        @operator("double", inputs=["a"], outputs=["b"])
        def double(io):
            while True:
                value = yield io.read("a")
                yield io.write("b", value * 2)
    """

    def wrap(body: Callable) -> Operator:
        return Operator(name, body, inputs, outputs, target, page,
                        hls_spec, port_widths)

    return wrap


@dataclass(frozen=True)
class Link:
    """A stream edge: producer port -> consumer port."""

    name: str
    source: Port
    sink: Port
    width: int = 32


@dataclass
class ExternalPort:
    """A graph-level port bound to the DMA engine (host side)."""

    name: str
    direction: str  # "in" feeds the graph, "out" drains it
    inner: Port = None
    width: int = 32


class DataflowGraph:
    """The top-level kernel: operators wired by latency-insensitive links.

    Build with :meth:`add` and :meth:`connect`; bind host-facing streams
    with :meth:`expose_input` / :meth:`expose_output`; then
    :meth:`validate` before handing the graph to a simulator or flow.
    """

    def __init__(self, name: str):
        self.name = name
        self.operators: Dict[str, Operator] = {}
        self.links: Dict[str, Link] = {}
        self.external_inputs: Dict[str, ExternalPort] = {}
        self.external_outputs: Dict[str, ExternalPort] = {}
        # port -> link name, for connectivity checks
        self._bound: Dict[Tuple[str, str], str] = {}

    # -- construction -------------------------------------------------------

    def add(self, op: Operator) -> Operator:
        """Add an operator; names must be unique."""
        if op.name in self.operators:
            raise DataflowError(f"duplicate operator name {op.name!r}")
        self.operators[op.name] = op
        return op

    def _resolve(self, spec: str, direction: str) -> Port:
        try:
            op_name, port_name = spec.split(".", 1)
        except ValueError:
            raise DataflowError(
                f"port spec {spec!r} must be 'operator.port'") from None
        if op_name not in self.operators:
            raise DataflowError(f"unknown operator {op_name!r} in {spec!r}")
        port = self.operators[op_name].port(port_name)
        if port.direction != direction:
            raise DataflowError(
                f"{spec}: expected an {direction}put port, "
                f"got {port.direction}put")
        return port

    def _bind(self, port: Port, link_name: str) -> None:
        key = (port.operator, port.name)
        if key in self._bound:
            raise DataflowError(
                f"port {port} already connected to link "
                f"{self._bound[key]!r}")
        self._bound[key] = link_name

    def connect(self, source: str, sink: str,
                name: Optional[str] = None) -> Link:
        """Wire ``"producer.port"`` to ``"consumer.port"`` with a stream."""
        src = self._resolve(source, "out")
        dst = self._resolve(sink, "in")
        if src.width != dst.width:
            raise DataflowError(
                f"width mismatch on link {source} -> {sink}: "
                f"{src.width} vs {dst.width}")
        link_name = name or f"{src.operator}_{src.name}__{dst.operator}_{dst.name}"
        if link_name in self.links:
            raise DataflowError(f"duplicate link name {link_name!r}")
        link = Link(link_name, src, dst, src.width)
        self._bind(src, link_name)
        self._bind(dst, link_name)
        self.links[link_name] = link
        return link

    def expose_input(self, name: str, sink: str) -> ExternalPort:
        """Bind a host-fed stream to an operator input port."""
        if name in self.external_inputs:
            raise DataflowError(f"duplicate external input {name!r}")
        port = self._resolve(sink, "in")
        self._bind(port, f"<ext:{name}>")
        ext = ExternalPort(name, "in", port, port.width)
        self.external_inputs[name] = ext
        return ext

    def expose_output(self, name: str, source: str) -> ExternalPort:
        """Bind an operator output port to a host-drained stream."""
        if name in self.external_outputs:
            raise DataflowError(f"duplicate external output {name!r}")
        port = self._resolve(source, "out")
        self._bind(port, f"<ext:{name}>")
        ext = ExternalPort(name, "out", port, port.width)
        self.external_outputs[name] = ext
        return ext

    # -- queries --------------------------------------------------------------

    def links_of(self, op_name: str) -> List[Link]:
        """All internal links touching an operator."""
        return [l for l in self.links.values()
                if l.source.operator == op_name or l.sink.operator == op_name]

    def predecessors(self, op_name: str) -> List[str]:
        """Operators feeding ``op_name`` through internal links."""
        return sorted({l.source.operator for l in self.links.values()
                       if l.sink.operator == op_name})

    def successors(self, op_name: str) -> List[str]:
        """Operators fed by ``op_name`` through internal links."""
        return sorted({l.sink.operator for l in self.links.values()
                       if l.source.operator == op_name})

    def topological_order(self) -> List[str]:
        """Operators in a feed-forward order (cycles tolerated via DFS).

        The Rosetta graphs are feed-forward; for graphs with feedback the
        order is a best-effort DFS finish order, which the simulators only
        use as a scheduling heuristic (correctness never depends on it).
        """
        seen: Dict[str, int] = {}
        order: List[str] = []

        def visit(node: str) -> None:
            state = seen.get(node, 0)
            if state:
                return
            seen[node] = 1
            for succ in self.successors(node):
                visit(succ)
            seen[node] = 2
            order.append(node)

        for name in self.operators:
            visit(name)
        order.reverse()
        return order

    def validate(self) -> None:
        """Check every port is wired exactly once and names resolve."""
        for op in self.operators.values():
            for port_name in op.inputs + op.outputs:
                if (op.name, port_name) not in self._bound:
                    raise DataflowError(
                        f"port {op.name}.{port_name} is not connected")
        if not self.external_inputs and not self.external_outputs:
            raise DataflowError(
                f"graph {self.name!r} has no external ports; the host "
                f"could neither feed nor observe it")

    def retarget(self, targets: Dict[str, str]) -> "DataflowGraph":
        """Copy of the graph with some operators' pragmas changed.

        ``targets`` maps operator name to ``"HW"`` or ``"RISCV"``.  Used by
        the flows and by Fig. 10's one-softcore sweep.
        """
        out = DataflowGraph(self.name)
        for op in self.operators.values():
            new_target = targets.get(op.name, op.target)
            out.add(op.with_target(new_target))
        for link in self.links.values():
            out.connect(f"{link.source.operator}.{link.source.name}",
                        f"{link.sink.operator}.{link.sink.name}", link.name)
        for ext in self.external_inputs.values():
            out.expose_input(ext.name, f"{ext.inner.operator}.{ext.inner.name}")
        for ext in self.external_outputs.values():
            out.expose_output(ext.name,
                              f"{ext.inner.operator}.{ext.inner.name}")
        return out

    def with_spec(self, operator: str, hls_spec,
                  sample_spec=None) -> "DataflowGraph":
        """Copy of the graph with one operator's IR replaced.

        The incremental-session edit: everything else — links, external
        ports, other operators — is structurally identical, so content
        keys of untouched operators are unchanged.
        """
        if operator not in self.operators:
            raise DataflowError(f"no operator {operator!r} to edit")
        out = DataflowGraph(self.name)
        for op in self.operators.values():
            if op.name == operator:
                out.add(op.with_spec(hls_spec, sample_spec))
            else:
                out.add(op)
        for link in self.links.values():
            out.connect(f"{link.source.operator}.{link.source.name}",
                        f"{link.sink.operator}.{link.sink.name}", link.name)
        for ext in self.external_inputs.values():
            out.expose_input(ext.name, f"{ext.inner.operator}.{ext.inner.name}")
        for ext in self.external_outputs.values():
            out.expose_output(ext.name,
                              f"{ext.inner.operator}.{ext.inner.name}")
        return out

    def __repr__(self) -> str:
        return (f"DataflowGraph({self.name!r}, {len(self.operators)} ops, "
                f"{len(self.links)} links)")
