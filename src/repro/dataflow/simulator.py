"""Untimed functional execution of a dataflow graph (reference semantics).

The functional simulator executes the graph as a Kahn process network:
operators run until they block on an empty input (capacities are
unbounded, so writes never block), and scheduling order cannot affect the
results.  This is the semantics every mapping must preserve — the paper's
central abstraction claim — so the -O0/-O1/-O3 execution models are all
tested against this simulator's outputs.

End-of-input is modelled by *closing* streams: the host closes external
inputs after feeding them, and an operator whose read hits a closed, empty
stream receives :class:`StreamClosed`, unwinding the (typically infinite)
kernel loop.  When an operator finishes, its output streams close, which
cascades shutdown through the graph.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.errors import DataflowError, DeadlockError
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.process import (
    OpIO,
    ReadBatchRequest,
    ReadRequest,
    WriteBatchRequest,
    WriteRequest,
)
from repro.dataflow.stream import Stream, StreamClosed


class _Process:
    """Book-keeping for one running operator."""

    def __init__(self, name: str, gen):
        self.name = name
        self.gen = gen
        self.request = None          # outstanding request, if blocked
        self.batch_progress: List[Any] = []   # partial batch reads
        self.batch_index = 0         # partial batch writes
        self.finished = False
        self.started = False


class FunctionalSimulator:
    """Executes a :class:`DataflowGraph` with unbounded FIFOs.

    Args:
        graph: the validated graph to run.
        max_steps: safety valve on total request-service steps; ``None``
            disables the guard.  A graph of well-formed operators always
            terminates once its inputs close, but a buggy source-less
            producer would otherwise spin forever.
    """

    def __init__(self, graph: DataflowGraph,
                 max_steps: Optional[int] = 100_000_000):
        graph.validate()
        self.graph = graph
        self.max_steps = max_steps
        self.streams: Dict[str, Stream] = {}
        self._in_stream: Dict[tuple, Stream] = {}
        self._out_streams: Dict[str, List[Stream]] = {
            name: [] for name in graph.operators}
        self.external_in: Dict[str, Stream] = {}
        self.external_out: Dict[str, Stream] = {}
        self._build_streams()
        self.steps = 0
        self.firings: Dict[str, int] = {name: 0 for name in graph.operators}

    def _build_streams(self) -> None:
        for link in self.graph.links.values():
            stream = Stream(link.name, link.width)
            self.streams[link.name] = stream
            self._in_stream[(link.sink.operator, link.sink.name)] = stream
            self._out_streams[link.source.operator].append(stream)
            # writes address streams by (operator, port) too
            self._in_stream[(link.source.operator, "!" + link.source.name)] \
                = stream
        for ext in self.graph.external_inputs.values():
            stream = Stream(f"<in:{ext.name}>", ext.width)
            self.external_in[ext.name] = stream
            self._in_stream[(ext.inner.operator, ext.inner.name)] = stream
        for ext in self.graph.external_outputs.values():
            stream = Stream(f"<out:{ext.name}>", ext.width)
            self.external_out[ext.name] = stream
            self._out_streams[ext.inner.operator].append(stream)
            self._in_stream[(ext.inner.operator, "!" + ext.inner.name)] \
                = stream

    # -- stream lookup -------------------------------------------------------

    def _read_stream(self, op: str, port: str) -> Stream:
        return self._in_stream[(op, port)]

    def _write_stream(self, op: str, port: str) -> Stream:
        return self._in_stream[(op, "!" + port)]

    # -- execution ------------------------------------------------------------

    def run(self, inputs: Dict[str, Iterable[Any]],
            close_inputs: bool = True) -> Dict[str, List[Any]]:
        """Feed ``inputs``, run to quiescence, return external outputs.

        Args:
            inputs: external input name -> token sequence.
            close_inputs: close the fed streams so the graph can drain
                and terminate (the normal, finite-run case).

        Returns:
            external output name -> list of produced tokens.
        """
        unknown = set(inputs) - set(self.external_in)
        if unknown:
            raise DataflowError(f"unknown external inputs: {sorted(unknown)}")
        for name, tokens in inputs.items():
            stream = self.external_in[name]
            for token in tokens:
                stream.write(token)
            if close_inputs:
                stream.close()
        missing = set(self.external_in) - set(inputs)
        if close_inputs:
            for name in missing:
                self.external_in[name].close()

        processes = {
            name: _Process(name, op.body(op.make_io()))
            for name, op in self.graph.operators.items()
        }
        order = self.graph.topological_order()

        progress = True
        while progress:
            progress = False
            for name in order:
                proc = processes[name]
                if proc.finished:
                    continue
                if self._run_until_blocked(proc):
                    progress = True
        # At quiescence with unbounded FIFOs, writes never block, and reads
        # on closed streams unwind their operator — so any process still
        # alive is waiting on an open stream no runnable producer will
        # ever feed: a deadlock.
        stuck = [p for p in processes.values() if not p.finished]
        if stuck:
            blocked = sorted(p.name for p in stuck)
            diagnostic = {
                "outstanding_requests": {
                    p.name: repr(p.request) for p in stuck
                    if p.request is not None},
                "stream_occupancy": {
                    name: len(stream)
                    for name, stream in sorted(self.streams.items())
                    if len(stream)},
                "firings": {name: self.firings[name] for name in blocked},
            }
            raise DeadlockError(
                f"graph {self.graph.name!r}: no runnable operator; "
                f"blocked: {blocked}", blocked=blocked,
                diagnostic=diagnostic)
        return {name: stream.drain()
                for name, stream in self.external_out.items()}

    def _finish(self, proc: _Process) -> None:
        proc.finished = True
        proc.request = None
        for stream in self._out_streams[proc.name]:
            stream.close()

    def _count_step(self) -> None:
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise DataflowError(
                f"functional simulation exceeded {self.max_steps} steps; "
                f"suspected runaway producer")

    def _run_until_blocked(self, proc: _Process) -> bool:
        """Resume one operator until it blocks or finishes.

        Returns True when any request was serviced (progress was made).
        """
        made_progress = False
        while True:
            value = None
            if proc.request is not None:
                serviced = self._try_service(proc)
                if serviced is None:
                    return made_progress      # blocked
                made_progress = True
                if serviced is False:
                    return made_progress      # finished (unwound)
                value = self._completed_value(proc)   # clears request
            try:
                if proc.started:
                    request = proc.gen.send(value)
                else:
                    proc.started = True
                    request = next(proc.gen)
            except StopIteration:
                self._finish(proc)
                return made_progress
            proc.request = request
            proc.batch_progress = []
            proc.batch_index = 0

    def _completed_value(self, proc: _Process) -> Any:
        request = proc.request
        proc.request = None
        if isinstance(request, ReadRequest):
            return proc.batch_progress[0]
        if isinstance(request, ReadBatchRequest):
            return list(proc.batch_progress)
        return None

    def _try_service(self, proc: _Process):
        """Try to complete the outstanding request.

        Returns True when complete, None when still blocked, False when
        the operator unwound (end of input) and finished.
        """
        request = proc.request
        if isinstance(request, (ReadRequest, ReadBatchRequest)):
            want = 1 if isinstance(request, ReadRequest) else request.count
            stream = self._read_stream(proc.name, request.port)
            while len(proc.batch_progress) < want:
                if stream.can_read():
                    self._count_step()
                    proc.batch_progress.append(stream.read())
                elif stream.closed:
                    return self._unwind(proc)
                else:
                    return None
            self.firings[proc.name] += 1
            return True
        if isinstance(request, WriteRequest):
            stream = self._write_stream(proc.name, request.port)
            self._count_step()
            stream.write(request.token)   # unbounded: never blocks
            return True
        if isinstance(request, WriteBatchRequest):
            stream = self._write_stream(proc.name, request.port)
            while proc.batch_index < len(request.tokens):
                self._count_step()
                stream.write(request.tokens[proc.batch_index])
                proc.batch_index += 1
            return True
        raise DataflowError(
            f"operator {proc.name!r} yielded unknown request {request!r}")

    def _unwind(self, proc: _Process) -> bool:
        """Throw StreamClosed into the generator (end of its input)."""
        try:
            proc.gen.throw(StreamClosed(
                f"input {proc.request.port!r} of {proc.name!r} ended"))
        except (StreamClosed, StopIteration):
            pass
        else:
            # The body caught StreamClosed and kept going: illegal, since
            # the token can never arrive.
            raise DataflowError(
                f"operator {proc.name!r} continued past end of input")
        self._finish(proc)
        return False


def run_graph(graph: DataflowGraph, inputs: Dict[str, Iterable[Any]],
              max_steps: Optional[int] = 100_000_000) -> Dict[str, List[Any]]:
    """One-shot functional run: feed ``inputs``, return external outputs."""
    return FunctionalSimulator(graph, max_steps=max_steps).run(inputs)
