"""Operator process protocol.

Operator bodies are Python generator functions.  They interact with their
streams by *yielding request objects* that the simulator services:

.. code-block:: python

    def body(io):
        while True:
            left = yield io.read("a")
            right = yield io.read("b")
            yield io.write("out", left + right)

``yield io.read(port)`` suspends the process until a token is available
and evaluates to that token; ``yield io.write(port, token)`` suspends
until there is FIFO space.  This cooperative style gives the simulators
full control over interleaving while keeping kernels single-source: the
same body runs under the functional simulator, the -O3 cycle simulator
and (after compilation) corresponds to what the softcore executes.
"""

from __future__ import annotations

from typing import Any, List


class ReadRequest:
    """Request one token from an input port (evaluates to the token)."""

    __slots__ = ("port",)

    def __init__(self, port: str):
        self.port = port

    def __repr__(self) -> str:
        return f"ReadRequest({self.port!r})"


class ReadBatchRequest:
    """Request ``count`` tokens from a port (evaluates to a list)."""

    __slots__ = ("port", "count")

    def __init__(self, port: str, count: int):
        if count < 1:
            raise ValueError("read_n count must be >= 1")
        self.port = port
        self.count = count

    def __repr__(self) -> str:
        return f"ReadBatchRequest({self.port!r}, {self.count})"


class WriteRequest:
    """Write one token to an output port."""

    __slots__ = ("port", "token")

    def __init__(self, port: str, token: Any):
        self.port = port
        self.token = token

    def __repr__(self) -> str:
        return f"WriteRequest({self.port!r}, {self.token!r})"


class WriteBatchRequest:
    """Write a sequence of tokens to an output port, in order."""

    __slots__ = ("port", "tokens")

    def __init__(self, port: str, tokens: List[Any]):
        self.port = port
        self.tokens = list(tokens)

    def __repr__(self) -> str:
        return f"WriteBatchRequest({self.port!r}, {len(self.tokens)} tokens)"


class OpIO:
    """Handle passed to operator bodies for building stream requests.

    The handle only *builds* requests; the executing simulator services
    them.  Port names are validated so kernels fail fast on typos.
    """

    def __init__(self, inputs, outputs):
        self._inputs = frozenset(inputs)
        self._outputs = frozenset(outputs)

    def read(self, port: str) -> ReadRequest:
        """One blocking token read from ``port``."""
        if port not in self._inputs:
            raise KeyError(f"unknown input port {port!r}")
        return ReadRequest(port)

    def read_n(self, port: str, count: int) -> ReadBatchRequest:
        """``count`` blocking token reads from ``port``."""
        if port not in self._inputs:
            raise KeyError(f"unknown input port {port!r}")
        return ReadBatchRequest(port, count)

    def write(self, port: str, token: Any) -> WriteRequest:
        """One blocking token write to ``port``."""
        if port not in self._outputs:
            raise KeyError(f"unknown output port {port!r}")
        return WriteRequest(port, token)

    def write_n(self, port: str, tokens) -> WriteBatchRequest:
        """Blocking write of every token in ``tokens`` to ``port``."""
        if port not in self._outputs:
            raise KeyError(f"unknown output port {port!r}")
        return WriteBatchRequest(port, tokens)
