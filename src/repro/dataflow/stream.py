"""Latency-insensitive stream links (Sec. 3.2).

A :class:`Stream` behaves like the paper's ``hls::stream``: a FIFO with
data presence.  Reads from an empty stream block; writes to a full stream
block (back pressure).  In the untimed functional simulator capacities are
unbounded, so only reads ever block — the Kahn condition that makes
execution deterministic.  Timed simulators bound the capacity to model
hardware FIFO depths and back-pressure stalls.

Tokens are raw 32-bit words by default (the linking network payload
width); HLS types are carried via their ``raw()`` bit patterns, exactly as
the hardware serialises them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import DataflowError


class StreamClosed(DataflowError):
    """Raised when reading a stream whose producer has finished."""


class ReadBlocked(Exception):
    """Internal: a read found the FIFO empty (scheduler suspends)."""


class WriteBlocked(Exception):
    """Internal: a write found the FIFO full (scheduler suspends)."""


class Stream:
    """A FIFO link between one producer port and one consumer port.

    Args:
        name: link name (used in graphs, reports and error messages).
        width: payload bit width; defaults to the 32-bit NoC word.
        capacity: maximum tokens held; ``None`` means unbounded
            (functional simulation).
    """

    def __init__(self, name: str, width: int = 32,
                 capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"stream {name!r}: capacity must be >= 1")
        self.name = name
        self.width = width
        self.capacity = capacity
        self._queue: deque = deque()
        self._closed = False
        # Statistics used for FIFO sizing (-O3 flow) and area accounting.
        self.total_writes = 0
        self.total_reads = 0
        self.max_occupancy = 0

    # -- state ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        """True when no tokens are waiting."""
        return not self._queue

    @property
    def full(self) -> bool:
        """True when a bounded FIFO has no free slots."""
        return self.capacity is not None and len(self._queue) >= self.capacity

    @property
    def closed(self) -> bool:
        """True once the producer signalled end-of-stream."""
        return self._closed

    @property
    def drained(self) -> bool:
        """True when closed and every token has been consumed."""
        return self._closed and not self._queue

    # -- operations ---------------------------------------------------------

    def can_read(self) -> bool:
        """Whether a read would succeed right now."""
        return bool(self._queue)

    def can_write(self) -> bool:
        """Whether a write would succeed right now."""
        return not self._closed and not self.full

    def write(self, token: Any) -> None:
        """Append a token; raises :class:`WriteBlocked` when full."""
        if self._closed:
            raise DataflowError(
                f"write to closed stream {self.name!r}")
        if self.full:
            raise WriteBlocked(self.name)
        self._queue.append(token)
        self.total_writes += 1
        if len(self._queue) > self.max_occupancy:
            self.max_occupancy = len(self._queue)

    def read(self) -> Any:
        """Pop the oldest token; raises :class:`ReadBlocked` when empty."""
        if not self._queue:
            if self._closed:
                raise StreamClosed(
                    f"read past end of stream {self.name!r}")
            raise ReadBlocked(self.name)
        self.total_reads += 1
        return self._queue.popleft()

    def peek(self) -> Any:
        """Look at the oldest token without consuming it."""
        if not self._queue:
            raise ReadBlocked(self.name)
        return self._queue[0]

    def close(self) -> None:
        """Producer signals no more tokens will arrive."""
        self._closed = True

    def drain(self) -> list:
        """Consume and return all waiting tokens (host-side helper)."""
        out = list(self._queue)
        self.total_reads += len(self._queue)
        self._queue.clear()
        return out

    def reset(self) -> None:
        """Clear contents and statistics (reuse between simulations)."""
        self._queue.clear()
        self._closed = False
        self.total_writes = 0
        self.total_reads = 0
        self.max_occupancy = 0

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (f"Stream({self.name!r}, width={self.width}, "
                f"{len(self._queue)}/{cap} tokens)")
