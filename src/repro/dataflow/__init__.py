"""Streaming dataflow compute model (SCORE / Kahn process networks).

This package is the paper's Sec. 3: applications are graphs of *operators*
connected by *latency-insensitive stream links*.  Operators communicate
only through blocking FIFO reads and writes, so their functional behaviour
is independent of where they run (FPGA page, softcore, or host) and of the
timing of the transport between them — the property that lets PLD swap
implementations per operator without changing results.

Public surface:

* :class:`Stream` — a latency-insensitive FIFO link.
* :class:`Operator` / :func:`operator` — kernel processes written as
  Python generators that ``yield`` on blocking stream access.
* :class:`DataflowGraph` — the top-level kernel: operators + links.
* :class:`FunctionalSimulator` — untimed KPN execution (reference
  semantics for every mapping).
* :class:`CycleSimulator` — timed execution used for the -O3 performance
  model (operators annotated with initiation intervals and direct FIFO
  links, Sec. 6.3).
"""

from repro.dataflow.stream import Stream, StreamClosed, ReadBlocked, WriteBlocked
from repro.dataflow.graph import DataflowGraph, Operator, Port, operator
from repro.dataflow.simulator import FunctionalSimulator, run_graph
from repro.dataflow.cycle_sim import CycleSimulator, OperatorTiming

__all__ = [
    "Stream",
    "StreamClosed",
    "ReadBlocked",
    "WriteBlocked",
    "DataflowGraph",
    "Operator",
    "Port",
    "operator",
    "FunctionalSimulator",
    "run_graph",
    "CycleSimulator",
    "OperatorTiming",
]
