"""Timed (cycle-level) execution of a dataflow graph.

The cycle simulator executes the same operator generators as the
functional simulator, but with *bounded* FIFOs and per-operator timing
annotations, producing a completion time in clock cycles.  It models the
-O3 configuration: operators synthesised by HLS run as pipelines with an
initiation interval (II), connected by direct hardware FIFO streams with
a fixed link latency (Sec. 6.3).

Timing model
------------

Every port moves at most one token per ``interval`` cycles (``interval``
defaults to the operator's II — a pipelined HLS loop accepts one iteration
per II cycles, and each port carries at most one token per iteration).
A token written at producer-local time ``t`` becomes visible to the
consumer at ``t + latency + link_latency``.  Bounded capacities create
back pressure: a writer stalls until the consumer has freed a slot, and
the stall duration falls out of the token timestamps.  Because blocking
conditions are exactly the functional simulator's (KPN), token *values*
are identical to the reference semantics; only timestamps are added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import DataflowError, DeadlockError
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.process import (
    ReadBatchRequest,
    ReadRequest,
    WriteBatchRequest,
    WriteRequest,
)
from repro.dataflow.stream import StreamClosed


@dataclass(frozen=True)
class OperatorTiming:
    """Timing annotation for one operator, from the HLS schedule.

    Args:
        ii: initiation interval — cycles between successive pipeline
            iterations (>= 1).
        latency: cycles from consuming an input to producing the
            corresponding output (pipeline depth).
    """

    ii: int = 1
    latency: int = 1

    def __post_init__(self):
        if self.ii < 1:
            raise ValueError(f"II must be >= 1, got {self.ii}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")


@dataclass
class _TimedFifo:
    """A bounded FIFO whose tokens carry availability timestamps."""

    name: str
    capacity: Optional[int]
    link_latency: int
    tokens: List[Tuple[Any, int]] = field(default_factory=list)
    head: int = 0                      # index of next token to read
    read_times: List[int] = field(default_factory=list)
    closed: bool = False

    def occupancy(self) -> int:
        return len(self.tokens) - self.head

    def can_write(self) -> bool:
        return self.capacity is None or self.occupancy() < self.capacity

    def slot_free_time(self) -> int:
        """Producer-visible time the next write's slot became free."""
        if self.capacity is None:
            return 0
        idx = len(self.tokens) - self.capacity
        if idx < 0:
            return 0
        return self.read_times[idx]

    def write(self, token: Any, when: int) -> None:
        self.tokens.append((token, when + self.link_latency))

    def can_read(self) -> bool:
        return self.head < len(self.tokens)

    def read(self, reader_time: int) -> Tuple[Any, int]:
        token, available = self.tokens[self.head]
        when = max(reader_time, available)
        self.read_times.append(when)
        self.head += 1
        return token, when

    @property
    def drained(self) -> bool:
        return self.closed and not self.can_read()


class _TimedProcess:
    def __init__(self, name: str, gen, timing: OperatorTiming):
        self.name = name
        self.gen = gen
        self.timing = timing
        self.request = None
        self.batch_progress: List[Any] = []
        self.batch_index = 0
        self.finished = False
        self.started = False
        # Per-port next-allowed-transfer times (one token per II per port).
        self.port_ready: Dict[str, int] = {}
        self.last_read = 0            # time of the most recent input token
        self.last_event = 0           # time of the operator's last transfer


class CycleSimulator:
    """Timed execution with bounded FIFOs and operator IIs.

    Args:
        graph: validated dataflow graph.
        timings: operator name -> :class:`OperatorTiming`; missing
            operators default to ``OperatorTiming(ii=1, latency=1)``.
        fifo_capacity: default stream depth (hardware FIFO depth); the
            -O3 flow sizes these from functional-run statistics.
        link_latency: cycles a token spends in flight on a link
            (pipelined interconnect between operators).
        capacities: optional per-link override of ``fifo_capacity``.
    """

    DEFAULT_TIMING = OperatorTiming(ii=1, latency=1)

    def __init__(self, graph: DataflowGraph,
                 timings: Optional[Dict[str, OperatorTiming]] = None,
                 fifo_capacity: int = 16, link_latency: int = 1,
                 capacities: Optional[Dict[str, int]] = None):
        graph.validate()
        if fifo_capacity < 1:
            raise DataflowError("fifo_capacity must be >= 1")
        self.graph = graph
        self.timings = dict(timings or {})
        self.fifo_capacity = fifo_capacity
        self.link_latency = link_latency
        caps = capacities or {}
        self.fifos: Dict[str, _TimedFifo] = {}
        self._in_fifo: Dict[Tuple[str, str], _TimedFifo] = {}
        self._out_fifos: Dict[str, List[_TimedFifo]] = {
            name: [] for name in graph.operators}
        for link in graph.links.values():
            fifo = _TimedFifo(link.name, caps.get(link.name, fifo_capacity),
                              link_latency)
            self.fifos[link.name] = fifo
            self._in_fifo[(link.sink.operator, link.sink.name)] = fifo
            self._in_fifo[(link.source.operator, "!" + link.source.name)] = fifo
            self._out_fifos[link.source.operator].append(fifo)
        # External streams are unbounded: DMA buffers live in card DRAM.
        for ext in graph.external_inputs.values():
            fifo = _TimedFifo(f"<in:{ext.name}>", None, 0)
            self._in_fifo[(ext.inner.operator, ext.inner.name)] = fifo
            self.fifos[fifo.name] = fifo
        for ext in graph.external_outputs.values():
            fifo = _TimedFifo(f"<out:{ext.name}>", None, 0)
            self._in_fifo[(ext.inner.operator, "!" + ext.inner.name)] = fifo
            self._out_fifos[ext.inner.operator].append(fifo)
            self.fifos[fifo.name] = fifo
        self.makespan = 0
        self.outputs: Dict[str, List[Any]] = {}
        self.output_times: Dict[str, List[int]] = {}

    # -- execution ---------------------------------------------------------

    def run(self, inputs: Dict[str, Iterable[Any]]) -> Dict[str, List[Any]]:
        """Feed ``inputs`` at time zero, run to completion.

        Returns the external outputs; :attr:`makespan` holds the cycle
        count at which the last token was produced.
        """
        unknown = set(inputs) - {e for e in self.graph.external_inputs}
        if unknown:
            raise DataflowError(f"unknown external inputs: {sorted(unknown)}")
        for name, ext in self.graph.external_inputs.items():
            fifo = self._in_fifo[(ext.inner.operator, ext.inner.name)]
            for token in inputs.get(name, ()):  # available at t=0
                fifo.write(token, 0)
            fifo.closed = True

        processes = {
            name: _TimedProcess(name, op.body(op.make_io()),
                                self.timings.get(name, self.DEFAULT_TIMING))
            for name, op in self.graph.operators.items()
        }
        order = self.graph.topological_order()

        progress = True
        while progress:
            progress = False
            for name in order:
                proc = processes[name]
                if proc.finished:
                    continue
                if self._run_until_blocked(proc):
                    progress = True
        stuck = [p for p in processes.values() if not p.finished]
        if stuck:
            blocked = sorted(p.name for p in stuck)
            diagnostic = {
                "outstanding_requests": {
                    p.name: repr(p.request) for p in stuck
                    if p.request is not None},
                "fifo_occupancy": {
                    name: f"{fifo.occupancy()}"
                          + (f"/{fifo.capacity}" if fifo.capacity else "")
                    for name, fifo in sorted(self.fifos.items())
                    if fifo.occupancy()},
            }
            raise DeadlockError(
                f"graph {self.graph.name!r} (timed): blocked: {blocked}; "
                f"FIFO capacities may be too small for the token pattern",
                blocked=blocked, diagnostic=diagnostic)

        self.outputs = {}
        self.output_times = {}
        for name, ext in self.graph.external_outputs.items():
            fifo = self._in_fifo[(ext.inner.operator, "!" + ext.inner.name)]
            self.outputs[name] = [tok for tok, _t in fifo.tokens]
            self.output_times[name] = [t for _tok, t in fifo.tokens]
            if fifo.tokens:
                self.makespan = max(self.makespan, fifo.tokens[-1][1])
        return self.outputs

    # -- process machinery (mirrors the functional simulator) ---------------

    def _finish(self, proc: _TimedProcess) -> None:
        proc.finished = True
        proc.request = None
        for fifo in self._out_fifos[proc.name]:
            fifo.closed = True

    def _run_until_blocked(self, proc: _TimedProcess) -> bool:
        made_progress = False
        while True:
            value = None
            if proc.request is not None:
                serviced = self._try_service(proc)
                if serviced is None:
                    return made_progress
                made_progress = True
                if serviced is False:
                    return made_progress
                value = self._completed_value(proc)   # clears request
            try:
                if proc.started:
                    request = proc.gen.send(value)
                else:
                    proc.started = True
                    request = next(proc.gen)
            except StopIteration:
                self._finish(proc)
                return made_progress
            proc.request = request
            proc.batch_progress = []
            proc.batch_index = 0

    def _completed_value(self, proc: _TimedProcess) -> Any:
        request = proc.request
        proc.request = None
        if isinstance(request, ReadRequest):
            return proc.batch_progress[0]
        if isinstance(request, ReadBatchRequest):
            return list(proc.batch_progress)
        return None

    def _advance_port(self, proc: _TimedProcess, port: str) -> int:
        """Earliest time this port may move its next token."""
        return proc.port_ready.get(port, 0)

    def _note_transfer(self, proc: _TimedProcess, port: str,
                       when: int) -> None:
        proc.port_ready[port] = when + proc.timing.ii
        proc.last_event = max(proc.last_event, when)

    def _try_service(self, proc: _TimedProcess):
        request = proc.request
        if isinstance(request, (ReadRequest, ReadBatchRequest)):
            want = 1 if isinstance(request, ReadRequest) else request.count
            fifo = self._in_fifo[(proc.name, request.port)]
            while len(proc.batch_progress) < want:
                if fifo.can_read():
                    ready = self._advance_port(proc, request.port)
                    token, when = fifo.read(ready)
                    proc.batch_progress.append(token)
                    proc.last_read = max(proc.last_read, when)
                    self._note_transfer(proc, request.port, when)
                elif fifo.closed:
                    return self._unwind(proc)
                else:
                    return None
            return True
        if isinstance(request, (WriteRequest, WriteBatchRequest)):
            tokens = ([request.token] if isinstance(request, WriteRequest)
                      else request.tokens)
            fifo = self._in_fifo[(proc.name, "!" + request.port)]
            while proc.batch_index < len(tokens):
                if not fifo.can_write():
                    return None
                # A pipelined operator emits the result `latency` cycles
                # after the input token it derives from; II paces the
                # port; back pressure delays until a slot frees.
                ready = max(self._advance_port(proc, request.port),
                            proc.last_read + proc.timing.latency,
                            fifo.slot_free_time())
                fifo.write(tokens[proc.batch_index], ready)
                self._note_transfer(proc, request.port, ready)
                proc.batch_index += 1
            return True
        raise DataflowError(
            f"operator {proc.name!r} yielded unknown request {request!r}")

    def _unwind(self, proc: _TimedProcess) -> bool:
        try:
            proc.gen.throw(StreamClosed(
                f"input {proc.request.port!r} of {proc.name!r} ended"))
        except (StreamClosed, StopIteration):
            pass
        else:
            raise DataflowError(
                f"operator {proc.name!r} continued past end of input")
        self._finish(proc)
        return False
