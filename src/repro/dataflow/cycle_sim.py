"""Timed (cycle-level) execution of a dataflow graph.

The cycle simulator executes the same operator generators as the
functional simulator, but with *bounded* FIFOs and per-operator timing
annotations, producing a completion time in clock cycles.  It models the
-O3 configuration: operators synthesised by HLS run as pipelines with an
initiation interval (II), connected by direct hardware FIFO streams with
a fixed link latency (Sec. 6.3).

Timing model
------------

Every port moves at most one token per ``interval`` cycles (``interval``
defaults to the operator's II — a pipelined HLS loop accepts one iteration
per II cycles, and each port carries at most one token per iteration).
A token written at producer-local time ``t`` becomes visible to the
consumer at ``t + latency + link_latency``.  Bounded capacities create
back pressure: a writer stalls until the consumer has freed a slot, and
the stall duration falls out of the token timestamps.  Because blocking
conditions are exactly the functional simulator's (KPN), token *values*
are identical to the reference semantics; only timestamps are added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import DataflowError, DeadlockError
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.process import (
    ReadBatchRequest,
    ReadRequest,
    WriteBatchRequest,
    WriteRequest,
)
from repro.dataflow.stream import StreamClosed


@dataclass(frozen=True)
class OperatorTiming:
    """Timing annotation for one operator, from the HLS schedule.

    Args:
        ii: initiation interval — cycles between successive pipeline
            iterations (>= 1).
        latency: cycles from consuming an input to producing the
            corresponding output (pipeline depth).
    """

    ii: int = 1
    latency: int = 1

    def __post_init__(self):
        if self.ii < 1:
            raise ValueError(f"II must be >= 1, got {self.ii}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")


@dataclass
class _TimedFifo:
    """A bounded FIFO whose tokens carry availability timestamps."""

    name: str
    capacity: Optional[int]
    link_latency: int
    tokens: List[Tuple[Any, int]] = field(default_factory=list)
    head: int = 0                      # index of next token to read
    read_times: List[int] = field(default_factory=list)
    closed: bool = False

    def occupancy(self) -> int:
        return len(self.tokens) - self.head

    def can_write(self) -> bool:
        return self.capacity is None or self.occupancy() < self.capacity

    def slot_free_time(self) -> int:
        """Producer-visible time the next write's slot became free."""
        if self.capacity is None:
            return 0
        idx = len(self.tokens) - self.capacity
        if idx < 0:
            return 0
        return self.read_times[idx]

    def write(self, token: Any, when: int) -> None:
        self.tokens.append((token, when + self.link_latency))

    def can_read(self) -> bool:
        return self.head < len(self.tokens)

    def read(self, reader_time: int) -> Tuple[Any, int]:
        token, available = self.tokens[self.head]
        when = max(reader_time, available)
        self.read_times.append(when)
        self.head += 1
        return token, when

    @property
    def drained(self) -> bool:
        return self.closed and not self.can_read()


class _TimedProcess:
    def __init__(self, name: str, gen, timing: OperatorTiming):
        self.name = name
        self.gen = gen
        self.timing = timing
        self.request = None
        self.batch_progress: List[Any] = []
        self.batch_index = 0
        self.finished = False
        self.started = False
        # Per-port next-allowed-transfer times (one token per II per port).
        self.port_ready: Dict[str, int] = {}
        self.last_read = 0            # time of the most recent input token
        self.last_event = 0           # time of the operator's last transfer
        # Port -> fifo maps, filled in by the simulator before running.
        self.read_fifos: Dict[str, _TimedFifo] = {}
        self.write_fifos: Dict[str, _TimedFifo] = {}


class CycleSimulator:
    """Timed execution with bounded FIFOs and operator IIs.

    Args:
        graph: validated dataflow graph.
        timings: operator name -> :class:`OperatorTiming`; missing
            operators default to ``OperatorTiming(ii=1, latency=1)``.
        fifo_capacity: default stream depth (hardware FIFO depth); the
            -O3 flow sizes these from functional-run statistics.
        link_latency: cycles a token spends in flight on a link
            (pipelined interconnect between operators).
        capacities: optional per-link override of ``fifo_capacity``.
    """

    DEFAULT_TIMING = OperatorTiming(ii=1, latency=1)

    def __init__(self, graph: DataflowGraph,
                 timings: Optional[Dict[str, OperatorTiming]] = None,
                 fifo_capacity: int = 16, link_latency: int = 1,
                 capacities: Optional[Dict[str, int]] = None):
        graph.validate()
        if fifo_capacity < 1:
            raise DataflowError("fifo_capacity must be >= 1")
        self.graph = graph
        self.timings = dict(timings or {})
        self.fifo_capacity = fifo_capacity
        self.link_latency = link_latency
        caps = capacities or {}
        self.fifos: Dict[str, _TimedFifo] = {}
        self._in_fifo: Dict[Tuple[str, str], _TimedFifo] = {}
        # Per-operator port -> fifo maps so the hot service path avoids
        # building (operator, port) tuple keys for every request.
        self._read_fifos: Dict[str, Dict[str, _TimedFifo]] = {
            name: {} for name in graph.operators}
        self._write_fifos: Dict[str, Dict[str, _TimedFifo]] = {
            name: {} for name in graph.operators}
        self._out_fifos: Dict[str, List[_TimedFifo]] = {
            name: [] for name in graph.operators}
        for link in graph.links.values():
            fifo = _TimedFifo(link.name, caps.get(link.name, fifo_capacity),
                              link_latency)
            self.fifos[link.name] = fifo
            self._in_fifo[(link.sink.operator, link.sink.name)] = fifo
            self._in_fifo[(link.source.operator, "!" + link.source.name)] = fifo
            self._read_fifos[link.sink.operator][link.sink.name] = fifo
            self._write_fifos[link.source.operator][link.source.name] = fifo
            self._out_fifos[link.source.operator].append(fifo)
        # External streams are unbounded: DMA buffers live in card DRAM.
        for ext in graph.external_inputs.values():
            fifo = _TimedFifo(f"<in:{ext.name}>", None, 0)
            self._in_fifo[(ext.inner.operator, ext.inner.name)] = fifo
            self._read_fifos[ext.inner.operator][ext.inner.name] = fifo
            self.fifos[fifo.name] = fifo
        for ext in graph.external_outputs.values():
            fifo = _TimedFifo(f"<out:{ext.name}>", None, 0)
            self._in_fifo[(ext.inner.operator, "!" + ext.inner.name)] = fifo
            self._write_fifos[ext.inner.operator][ext.inner.name] = fifo
            self._out_fifos[ext.inner.operator].append(fifo)
            self.fifos[fifo.name] = fifo
        self.makespan = 0
        self.outputs: Dict[str, List[Any]] = {}
        self.output_times: Dict[str, List[int]] = {}

    # -- execution ---------------------------------------------------------

    def run(self, inputs: Dict[str, Iterable[Any]]) -> Dict[str, List[Any]]:
        """Feed ``inputs`` at time zero, run to completion.

        Returns the external outputs; :attr:`makespan` holds the cycle
        count at which the last token was produced.
        """
        unknown = set(inputs) - {e for e in self.graph.external_inputs}
        if unknown:
            raise DataflowError(f"unknown external inputs: {sorted(unknown)}")
        for name, ext in self.graph.external_inputs.items():
            fifo = self._in_fifo[(ext.inner.operator, ext.inner.name)]
            for token in inputs.get(name, ()):  # available at t=0
                fifo.write(token, 0)
            fifo.closed = True

        processes = {
            name: _TimedProcess(name, op.body(op.make_io()),
                                self.timings.get(name, self.DEFAULT_TIMING))
            for name, op in self.graph.operators.items()
        }
        for name, proc in processes.items():
            proc.read_fifos = self._read_fifos[name]
            proc.write_fifos = self._write_fifos[name]
        order = self.graph.topological_order()

        # Sweep only the still-running processes each pass; finished
        # ones drop out while the relative (topological) order of the
        # rest — and hence the service order — is unchanged.
        active = [processes[name] for name in order]
        progress = True
        while progress:
            progress = False
            remaining = []
            for proc in active:
                if self._run_until_blocked(proc):
                    progress = True
                if not proc.finished:
                    remaining.append(proc)
            active = remaining
        stuck = [p for p in processes.values() if not p.finished]
        if stuck:
            blocked = sorted(p.name for p in stuck)
            diagnostic = {
                "outstanding_requests": {
                    p.name: repr(p.request) for p in stuck
                    if p.request is not None},
                "fifo_occupancy": {
                    name: f"{fifo.occupancy()}"
                          + (f"/{fifo.capacity}" if fifo.capacity else "")
                    for name, fifo in sorted(self.fifos.items())
                    if fifo.occupancy()},
            }
            raise DeadlockError(
                f"graph {self.graph.name!r} (timed): blocked: {blocked}; "
                f"FIFO capacities may be too small for the token pattern",
                blocked=blocked, diagnostic=diagnostic)

        self.outputs = {}
        self.output_times = {}
        for name, ext in self.graph.external_outputs.items():
            fifo = self._in_fifo[(ext.inner.operator, "!" + ext.inner.name)]
            self.outputs[name] = [tok for tok, _t in fifo.tokens]
            self.output_times[name] = [t for _tok, t in fifo.tokens]
            if fifo.tokens:
                self.makespan = max(self.makespan, fifo.tokens[-1][1])
        return self.outputs

    # -- process machinery (mirrors the functional simulator) ---------------

    def _finish(self, proc: _TimedProcess) -> None:
        proc.finished = True
        proc.request = None
        for fifo in self._out_fifos[proc.name]:
            fifo.closed = True

    def _run_until_blocked(self, proc: _TimedProcess) -> bool:
        made_progress = False
        while True:
            value = None
            if proc.request is not None:
                serviced = self._try_service(proc)
                if serviced is None:
                    return made_progress
                made_progress = True
                if serviced is False:
                    return made_progress
                value = self._completed_value(proc)   # clears request
            try:
                if proc.started:
                    request = proc.gen.send(value)
                else:
                    proc.started = True
                    request = next(proc.gen)
            except StopIteration:
                self._finish(proc)
                return made_progress
            proc.request = request
            proc.batch_progress = []
            proc.batch_index = 0

    def _completed_value(self, proc: _TimedProcess) -> Any:
        request = proc.request
        proc.request = None
        if isinstance(request, ReadRequest):
            return proc.batch_progress[0]
        if isinstance(request, ReadBatchRequest):
            return list(proc.batch_progress)
        return None

    def _try_service(self, proc: _TimedProcess):
        # The fifo reads/writes and II/latency/back-pressure arithmetic
        # are inlined here (rather than going through _TimedFifo.read /
        # write / slot_free_time and _note_transfer) — this method
        # services every token of every run and the call/tuple-key
        # overhead dominated the simulator's profile.  The arithmetic is
        # identical; the equivalence tests pin that down.
        request = proc.request
        cls = request.__class__
        if cls is ReadRequest:
            want = 1
        elif cls is ReadBatchRequest:
            want = request.count
        else:
            want = None
        if want is not None or isinstance(request,
                                          (ReadRequest, ReadBatchRequest)):
            if want is None:
                want = (1 if isinstance(request, ReadRequest)
                        else request.count)
            port = request.port
            fifo = proc.read_fifos[port]
            batch = proc.batch_progress
            port_ready = proc.port_ready
            ii = proc.timing.ii
            tokens = fifo.tokens
            while len(batch) < want:
                if fifo.head < len(tokens):
                    token, when = tokens[fifo.head]
                    ready = port_ready.get(port, 0)
                    if ready > when:
                        when = ready
                    fifo.read_times.append(when)
                    fifo.head += 1
                    batch.append(token)
                    if when > proc.last_read:
                        proc.last_read = when
                    port_ready[port] = when + ii
                    if when > proc.last_event:
                        proc.last_event = when
                elif fifo.closed:
                    return self._unwind(proc)
                else:
                    return None
            return True
        if cls is WriteRequest or isinstance(request, WriteRequest):
            out_tokens = [request.token]
        elif cls is WriteBatchRequest or isinstance(request,
                                                    WriteBatchRequest):
            out_tokens = request.tokens
        else:
            raise DataflowError(
                f"operator {proc.name!r} yielded unknown request "
                f"{request!r}")
        port = request.port
        fifo = proc.write_fifos[port]
        port_ready = proc.port_ready
        timing = proc.timing
        capacity = fifo.capacity
        link_latency = fifo.link_latency
        tokens = fifo.tokens
        read_times = fifo.read_times
        n_tokens = len(out_tokens)
        while proc.batch_index < n_tokens:
            if capacity is not None and len(tokens) - fifo.head >= capacity:
                return None
            # A pipelined operator emits the result `latency` cycles
            # after the input token it derives from; II paces the
            # port; back pressure delays until a slot frees.
            ready = port_ready.get(port, 0)
            after_read = proc.last_read + timing.latency
            if after_read > ready:
                ready = after_read
            if capacity is not None:
                idx = len(tokens) - capacity
                if idx >= 0 and read_times[idx] > ready:
                    ready = read_times[idx]
            tokens.append((out_tokens[proc.batch_index],
                           ready + link_latency))
            port_ready[port] = ready + timing.ii
            if ready > proc.last_event:
                proc.last_event = ready
            proc.batch_index += 1
        return True

    def _unwind(self, proc: _TimedProcess) -> bool:
        try:
            proc.gen.throw(StreamClosed(
                f"input {proc.request.port!r} of {proc.name!r} ended"))
        except (StreamClosed, StopIteration):
            pass
        else:
            raise DataflowError(
                f"operator {proc.name!r} continued past end of input")
        self._finish(proc)
        return False
