"""3D rendering: a triangle pipeline decomposed by stage and region.

Following the paper's decomposition (Sec. 7.2): projection to a 2D
viewport, rasterisation (the large stage, split across two operators by
image region — even and odd triangle batches cover interleaved halves),
Z-buffered culling, and colouring — six operators:

``unpack -> project -> {rast_a, rast_b} -> zcull -> color``

Triangles arrive as 9 words (three XYZ vertices); each rasteriser
scans a fixed bounding-box window per triangle (as Rosetta assumes
triangles are small) and emits (address, depth) pairs; ``zcull`` keeps
the nearest depth per pixel in an on-chip Z-buffer and finally streams
the frame; ``color`` maps depth to shade.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.graph import DataflowGraph
from repro.hls.frontend import OperatorBuilder
from repro.rosetta.base import (
    RosettaApp,
    add_spec_operator,
    deterministic_rng,
    finish_app,
)

#: Paper scale: Rosetta renders 3,192 triangles into a 256x256 frame.
PAPER_TRIANGLES, PAPER_FB, PAPER_WINDOW = 3_192, 256, 16

#: Sample scale.
TRIANGLES, FB, WINDOW = 4, 8, 4

#: Sentinel address for uncovered window pixels.
MISS = 0xFFFFFFFF

PAPER_TOKENS = PAPER_TRIANGLES * 9


def _unpack(n_tri: int, unroll: int = 1):
    b = OperatorBuilder("unpack", inputs=[("Input_1", 32)],
                        outputs=[("tri", 32)])
    with b.loop("TRI", n_tri, pipeline=True, unroll=unroll):
        for _ in range(9):
            b.write("tri", b.read("Input_1", signed=False))
    return b.build()


def _project(n_tri: int, fb: int, unroll: int = 1):
    """Project vertices and alternate triangles across rasterisers."""
    b = OperatorBuilder("project", inputs=[("tri", 32)],
                        outputs=[("even", 32), ("odd", 32)])
    b.variable("minx", 16)
    b.variable("miny", 16)
    b.variable("z", 16)
    fb_mask = fb - 1
    with b.loop("TRI", n_tri, pipeline=True, unroll=unroll) as t:
        b.set("minx", fb_mask)
        b.set("miny", fb_mask)
        b.set("z", 0)
        for _v in range(3):
            x = b.cast(b.and_(b.read("tri", signed=False), fb_mask), 16)
            y = b.cast(b.and_(b.read("tri", signed=False), fb_mask), 16)
            zc = b.cast(b.read("tri", signed=False), 16)
            b.set("minx", b.cast(b.min_(b.get("minx"), x), 16))
            b.set("miny", b.cast(b.min_(b.get("miny"), y), 16))
            # Perspective-ish scale of depth (keeps a couple of DSPs).
            scaled = b.shr(b.mul(zc, 3), 2)
            b.set("z", b.cast(b.max_(b.get("z"), b.cast(scaled, 16)), 16))
        parity = b.cast(b.and_(t, 1), 1, signed=False)
        packed_x = b.cast(b.get("minx"), 32)
        packed_y = b.cast(b.get("miny"), 32)
        packed_z = b.cast(b.get("z"), 32)
        with b.if_(b.eq(parity, 0)):
            b.write("even", packed_x)
            b.write("even", packed_y)
            b.write("even", packed_z)
        with b.orelse():
            b.write("odd", packed_x)
            b.write("odd", packed_y)
            b.write("odd", packed_z)
    return b.build()


def _rasterize(name: str, n_tri: int, fb: int, window: int, unroll: int):
    """Scan a window x window box per triangle, emit (addr, z) pairs."""
    b = OperatorBuilder(name, inputs=[("tri", 32)],
                        outputs=[("frag", 32)])
    b.variable("bx", 16)
    b.variable("by", 16)
    b.variable("bz", 16)
    fb_bits = (fb - 1).bit_length()
    with b.loop("TRI", n_tri):
        b.set("bx", b.cast(b.read("tri", signed=False), 16))
        b.set("by", b.cast(b.read("tri", signed=False), 16))
        b.set("bz", b.cast(b.read("tri", signed=False), 16))
        with b.loop("WY", window):
            with b.loop("WX", window, pipeline=True, unroll=unroll) as wx:
                # WY index is a var; fetch both loop indices.
                px = b.add(b.get("bx"), b.cast(wx, 16))
                # Simplified coverage: inside the frame and inside a
                # triangular half of the window (x offset <= y offset).
                inside_x = b.lt(px, fb)
                addr_y = b.get("by")
                covered = inside_x
                addr = b.cast(
                    b.or_(b.shl(b.cast(addr_y, 32), fb_bits),
                          b.cast(px, 32)), 32, signed=False)
                out = b.select(covered, addr, MISS)
                b.write("frag", b.cast(out, 32))
                b.write("frag", b.cast(b.get("bz"), 32))
    return b.build()


def _zcull(n_tri: int, fb: int, window: int):
    """Depth test into the Z-buffer, then stream the frame."""
    b = OperatorBuilder("zcull", inputs=[("even", 32), ("odd", 32)],
                        outputs=[("px", 32)])
    depth = fb * fb
    bits = max(4, (depth - 1).bit_length())
    b.array("zbuf", depth, 16, init=None)
    b.variable("addr", 32, signed=False)
    b.variable("z", 16)
    frags = window * window
    half = (n_tri + 1) // 2
    for port, trip in (("even", half), ("odd", n_tri - half)):
        with b.loop(f"CULL_{port}", trip * frags, pipeline=True):
            b.set("addr", b.read(port, signed=False))
            b.set("z", b.cast(b.read(port, signed=False), 16))
            hit = b.ne(b.get("addr"), MISS)
            with b.if_(hit):
                idx = b.cast(b.and_(b.get("addr"), depth - 1), bits,
                             signed=False)
                old = b.load("zbuf", idx)
                better = b.or_(b.eq(old, 0), b.lt(b.get("z"), old))
                stored = b.select(better, b.get("z"), old)
                b.store("zbuf", idx, b.cast(stored, 16))
        # Z-buffer initialised to zero per frame; zero means "empty".
    with b.loop("DRAIN", depth, pipeline=True) as i:
        b.write("px", b.cast(b.load("zbuf", b.cast(i, bits, signed=False)),
                             32))
    return b.build()


def _color(fb: int, unroll: int):
    b = OperatorBuilder("color", inputs=[("px", 32)],
                        outputs=[("Output_1", 32)])
    with b.loop("PIX", fb * fb, pipeline=True, unroll=unroll):
        z = b.cast(b.read("px", signed=False), 16)
        # Shade: nearer is brighter, with a gamma-ish curve.
        shade = b.cast(b.sub(255, b.and_(z, 255)), 16)
        boosted = b.cast(b.shr(b.mul(shade, shade), 8), 16)
        out = b.select(b.eq(z, 0), 0, b.cast(boosted, 32))
        b.write("Output_1", b.cast(out, 32))
    return b.build()


def _recipes():
    paper = [
        _unpack(PAPER_TRIANGLES, unroll=4),
        _project(PAPER_TRIANGLES, PAPER_FB, unroll=4),
        _rasterize("rast_even", (PAPER_TRIANGLES + 1) // 2, PAPER_FB,
                   PAPER_WINDOW, unroll=16),
        _rasterize("rast_odd", PAPER_TRIANGLES // 2, PAPER_FB,
                   PAPER_WINDOW, unroll=16),
        _zcull(PAPER_TRIANGLES, PAPER_FB, PAPER_WINDOW),
        _color(PAPER_FB, unroll=16),
    ]
    sample = [
        _unpack(TRIANGLES),
        _project(TRIANGLES, FB),
        _rasterize("rast_even", (TRIANGLES + 1) // 2, FB, WINDOW,
                   unroll=1),
        _rasterize("rast_odd", TRIANGLES // 2, FB, WINDOW, unroll=1),
        _zcull(TRIANGLES, FB, WINDOW),
        _color(FB, unroll=1),
    ]
    return zip(paper, sample)


def build_graph() -> DataflowGraph:
    g = DataflowGraph("3d-rendering")
    for paper_spec, sample_spec in _recipes():
        add_spec_operator(g, paper_spec, sample_spec=sample_spec)
    g.connect("unpack.tri", "project.tri")
    g.connect("project.even", "rast_even.tri")
    g.connect("project.odd", "rast_odd.tri")
    g.connect("rast_even.frag", "zcull.even")
    g.connect("rast_odd.frag", "zcull.odd")
    g.connect("zcull.px", "color.px")
    g.expose_input("Input_1", "unpack.Input_1")
    g.expose_output("Output_1", "color.Output_1")
    return g


def sample_inputs() -> Dict[str, List[int]]:
    rng = deterministic_rng("3d-rendering")
    tokens: List[int] = []
    for _t in range(TRIANGLES):
        for _v in range(3):
            tokens.append(rng.randrange(FB))          # x
            tokens.append(rng.randrange(FB))          # y
            tokens.append(rng.randrange(1, 200))      # z
    return {"Input_1": tokens}


def build() -> RosettaApp:
    return finish_app(
        "3d-rendering",
        "triangle rendering pipeline split by stage and image region",
        build_graph(), sample_inputs(), PAPER_TOKENS)
