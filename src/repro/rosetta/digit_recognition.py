"""Digit recognition: KNN over a training set as a systolic pipeline.

The paper refactors the Rosetta KNN classifier into a systolic pipeline
where each stage holds a shard of the training set (Sec. 7.2).  A test
digit (bit-packed pixels) flows down the pipeline together with the
best (distance, label) found so far; every stage compares the candidate
against its shard with XOR + popcount Hamming distances and updates the
running best; a final vote operator emits the label.

20 operators: ``unpack`` + 18 ``knn_stage_*`` + ``vote``.

Notably DSP-free (Tab. 4 reports 0-1 DSPs): distances use table-based
popcounts and adds only.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dataflow.graph import DataflowGraph
from repro.hls.frontend import OperatorBuilder
from repro.rosetta.base import (
    POPCOUNT8,
    RosettaApp,
    add_spec_operator,
    declare_popcount_table,
    deterministic_rng,
    emit_popcount32,
    finish_app,
)

#: Pipeline stages (training-set shards).
STAGES = 18

#: Words per digit (paper: 196-bit 14x14 digits -> 7 words).
PAPER_DIGIT_WORDS, DIGIT_WORDS = 7, 2

#: Training vectors per stage (paper: 18,000 total / 18 stages).
PAPER_SHARD, SHARD = 1_000, 4

#: Test digits per input batch.
PAPER_TESTS, TESTS = 2_000, 3

#: Sentinel distance (larger than any real Hamming distance).
MAX_DIST = 0xFFFF

PAPER_TOKENS = PAPER_TESTS * PAPER_DIGIT_WORDS


def _training_shard(stage: int, shard: int, words: int
                    ) -> Tuple[List[int], List[int]]:
    """Deterministic synthetic training data: (packed words, labels)."""
    rng = deterministic_rng(f"digit-train-{stage}")
    data: List[int] = []
    labels: List[int] = []
    for vec in range(shard):
        label = (stage + vec) % 10
        # Each class has a distinct bit density so KNN is meaningful.
        density = 0.2 + 0.06 * label
        for _w in range(words):
            word = 0
            for bit in range(32):
                if rng.random() < density:
                    word |= 1 << bit
            data.append(word)
        labels.append(label)
    return data, labels


def _unpack(tests: int, words: int):
    b = OperatorBuilder("unpack", inputs=[("Input_1", 32)],
                        outputs=[("cand", 32)])
    with b.loop("TEST", tests, pipeline=True):
        for _ in range(words):
            b.write("cand", b.read("Input_1", signed=False))
        # Seed the running best: (distance, label).
        b.write("cand", MAX_DIST)
        b.write("cand", 10)                 # invalid label sentinel
    return b.build()


def _knn_stage(stage: int, tests: int, shard: int, words: int,
               unroll: int):
    name = f"knn_{stage:02d}"
    b = OperatorBuilder(name, inputs=[("in", 32)], outputs=[("out", 32)])
    data, labels = _training_shard(stage, shard, words)
    b.array("train", shard * words, 32, signed=False, init=data,
            partition=True)
    b.array("labels", shard, 8, signed=False, init=labels,
            partition=True)
    table = declare_popcount_table(b)
    for w in range(words):
        b.variable(f"d{w}", 32, signed=False)
    b.variable("best", 16, signed=False)
    b.variable("best_label", 8, signed=False)
    b.variable("dist", 16, signed=False)
    b.variable("vbase", 24, signed=False)     # running word index
    addr_bits = max(4, (shard * words - 1).bit_length())
    lbl_bits = max(2, (shard - 1).bit_length())
    with b.loop("TEST", tests):
        for w in range(words):
            b.set(f"d{w}", b.read("in", signed=False))
        b.set("best", b.cast(b.read("in", signed=False), 16,
                             signed=False))
        b.set("best_label", b.cast(b.read("in", signed=False), 8,
                                   signed=False))
        b.set("vbase", 0)
        with b.loop("VEC", shard, pipeline=True, unroll=unroll) as v:
            b.set("dist", 0)
            for w in range(words):
                # Multiplier-free addressing (the kernel must stay
                # DSP-free, Tab. 4): a running base replaces v * words.
                idx = b.cast(b.add(b.get("vbase"), w), addr_bits,
                             signed=False)
                tw = b.load("train", idx)
                diff = b.xor(b.get(f"d{w}"), tw)
                pc = emit_popcount32(b, table, diff)
                b.set("dist", b.cast(b.add(b.get("dist"), pc), 16,
                                     signed=False))
            closer = b.lt(b.get("dist"), b.get("best"))
            lbl = b.load("labels", b.cast(v, lbl_bits, signed=False))
            b.set("best", b.cast(
                b.select(closer, b.get("dist"), b.get("best")), 16,
                signed=False))
            b.set("best_label", b.cast(
                b.select(closer, lbl, b.get("best_label")), 8,
                signed=False))
            b.set("vbase", b.cast(b.add(b.get("vbase"), words), 24,
                                  signed=False))
        for w in range(words):
            b.write("out", b.get(f"d{w}"))
        b.write("out", b.cast(b.get("best"), 32))
        b.write("out", b.cast(b.get("best_label"), 32))
    return b.build()


def _vote(tests: int, words: int):
    b = OperatorBuilder("vote", inputs=[("in", 32)],
                        outputs=[("Output_1", 32)])
    with b.loop("TEST", tests, pipeline=True):
        for _ in range(words):
            b.read("in", signed=False)         # drop the digit payload
        b.read("in", signed=False)             # drop the distance
        label = b.read("in", signed=False)
        b.write("Output_1", label)
    return b.build()


def build_graph() -> DataflowGraph:
    g = DataflowGraph("digit-recognition")
    add_spec_operator(g, _unpack(PAPER_TESTS, PAPER_DIGIT_WORDS),
                      sample_spec=_unpack(TESTS, DIGIT_WORDS))
    previous = "unpack.cand"
    for stage in range(STAGES):
        paper = _knn_stage(stage, PAPER_TESTS, PAPER_SHARD,
                           PAPER_DIGIT_WORDS, unroll=2)
        sample = _knn_stage(stage, TESTS, SHARD, DIGIT_WORDS, unroll=1)
        add_spec_operator(g, paper, sample_spec=sample)
        g.connect(previous, f"knn_{stage:02d}.in")
        previous = f"knn_{stage:02d}.out"
    add_spec_operator(g, _vote(PAPER_TESTS, PAPER_DIGIT_WORDS),
                      sample_spec=_vote(TESTS, DIGIT_WORDS))
    g.connect(previous, "vote.in")
    g.expose_input("Input_1", "unpack.Input_1")
    g.expose_output("Output_1", "vote.Output_1")
    return g


def sample_inputs() -> Dict[str, List[int]]:
    rng = deterministic_rng("digit-tests")
    tokens: List[int] = []
    for _t in range(TESTS):
        for _w in range(DIGIT_WORDS):
            tokens.append(rng.randrange(1 << 32))
    return {"Input_1": tokens}


def reference(inputs: Dict[str, List[int]]) -> Dict[str, List[int]]:
    """Pure-Python golden model of the systolic KNN."""
    tokens = inputs["Input_1"]
    out: List[int] = []
    for t in range(TESTS):
        digit = tokens[t * DIGIT_WORDS:(t + 1) * DIGIT_WORDS]
        best = MAX_DIST
        best_label = 10
        for stage in range(STAGES):
            data, labels = _training_shard(stage, SHARD, DIGIT_WORDS)
            for v in range(SHARD):
                dist = 0
                for w in range(DIGIT_WORDS):
                    diff = digit[w] ^ data[v * DIGIT_WORDS + w]
                    dist += sum(POPCOUNT8[(diff >> (8 * k)) & 0xFF]
                                for k in range(4))
                if dist < best:
                    best = dist
                    best_label = labels[v]
        out.append(best_label)
    return {"Output_1": out}


def build() -> RosettaApp:
    return finish_app(
        "digit-recognition",
        "systolic KNN digit classifier over training-set shards",
        build_graph(), sample_inputs(), PAPER_TOKENS,
        reference=reference)
