"""Binarised neural network: xnor-popcount CNN with on-chip weights.

Following the paper (Sec. 7.2): six convolutional levels and three
fully-connected levels classify CIFAR-style images; the first level
consumes fixed-point pixels and produces binary activations, later
levels are fully binary; all weight coefficients live in on-chip memory
(the Tab. 4 BRAM column is dominated by them), and *each stage and
operation is its own operator* — 22 in total:

``unpack -> quant -> (conv a/b) x 6 levels with pools after levels
2, 4, 6 -> fc1 a/b -> fc2 -> fc3 -> argmax``

Feature maps travel as 32-bit binary channel words, one word per pixel
per half-level; convolutions mix a horizontal window of K positions
with xnor + table popcounts; pools are 2x2 word-wise ORs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.graph import DataflowGraph
from repro.hls.frontend import OperatorBuilder
from repro.rosetta.base import (
    RosettaApp,
    add_spec_operator,
    declare_popcount_table,
    deterministic_rng,
    emit_popcount32,
    finish_app,
)


class Dims:
    """All size parameters for one build scale.

    ``conv_weight_words`` / ``fc1_weight_words`` size the on-chip weight
    ROMs: the stream model narrows feature maps to one word per pixel
    per half-level, but the real layers hold coefficients for the full
    channel depth, which is what fills the Tab. 4 BRAM column.
    """

    def __init__(self, image: int, kernel: int, conv_weight_words: int,
                 fc1_weight_words: int, fc_bits: int, unroll: int):
        self.image = image                  # input image side
        self.kernel = kernel                # horizontal window positions
        self.conv_weight_words = conv_weight_words
        self.fc1_weight_words = fc1_weight_words
        self.fc_bits = fc_bits              # fc layer output bits
        self.unroll = unroll

    def side_at(self, level: int) -> int:
        """Feature-map side entering conv level `level` (1-based)."""
        side = self.image
        for boundary in (2, 4, 6):
            if level > boundary:
                side //= 2
        return side


PAPER = Dims(image=32, kernel=3, conv_weight_words=64,
             fc1_weight_words=128, fc_bits=512, unroll=4)
SAMPLE = Dims(image=8, kernel=1, conv_weight_words=2,
              fc1_weight_words=2, fc_bits=32, unroll=1)

#: Paper input: 10 images x 32x32 pixels x 3 colour words.
PAPER_TOKENS = 10 * 32 * 32 * 3


def _weights(tag: str, count: int) -> List[int]:
    rng = deterministic_rng(f"bnn-{tag}")
    return [rng.randrange(1 << 32) for _ in range(count)]


def _unpack(d: Dims):
    b = OperatorBuilder("unpack", inputs=[("Input_1", 32)],
                        outputs=[("px", 32)])
    with b.loop("PIX", d.image * d.image * 3, pipeline=True):
        b.write("px", b.read("Input_1", signed=False))
    return b.build()


def _quant(d: Dims):
    """Fixed-point first level: 3 colour words -> 1 binary word."""
    b = OperatorBuilder("quant", inputs=[("px", 32)],
                        outputs=[("q0", 32), ("q1", 32)])
    b.variable("word", 32, signed=False)
    with b.loop("PIX", d.image * d.image, pipeline=True):
        r = b.cast(b.read("px", signed=False), 16)
        gch = b.cast(b.read("px", signed=False), 16)
        bch = b.cast(b.read("px", signed=False), 16)
        # Luma-ish weighted sum (the one DSP-using stage, Tab. 4).
        luma = b.add(b.add(b.mul(r, 77), b.mul(gch, 150)),
                     b.mul(bch, 29))
        b.set("word", 0)
        with b.loop("BIT", 32, pipeline=True) as i:
            # 32 binary activations from shifted thresholds.
            thresh = b.shl(b.cast(b.add(i, 1), 32), 9)
            bit = b.ge(b.cast(luma, 32), thresh)
            placed = b.shl(b.cast(bit, 32, signed=False),
                           b.cast(i, 5, signed=False))
            b.set("word", b.cast(b.or_(b.get("word"), placed), 32,
                                 signed=False))
        b.write("q0", b.get("word"))
        b.write("q1", b.get("word"))
    return b.build()


def _conv(name: str, d: Dims, level: int, in_words: int):
    """One binary conv half-level: window xnor-popcount per out bit."""
    side = d.side_at(level)
    ins = [(f"i{k}", 32) for k in range(in_words)]
    b = OperatorBuilder(name, inputs=ins,
                        outputs=[("o0", 32), ("o1", 32)])
    table = declare_popcount_table(b)
    depth = d.kernel * 32 * max(in_words, d.conv_weight_words)
    b.array("w", depth, 32, signed=False, init=_weights(name, depth),
            partition=True)
    b.array("thr", 32, 16, signed=False, partition=True,
            init=[(16 * d.kernel * in_words)] * 32)
    for k in range(d.kernel):
        for word in range(in_words):
            b.variable(f"win{k}_{word}", 32, signed=False)
    b.variable("out", 32, signed=False)
    b.variable("acc", 16, signed=False)
    abits = max(2, (depth - 1).bit_length())
    with b.loop("PIX", side * side):
        # Shift the horizontal window and take the new words.
        for k in range(d.kernel - 1, 0, -1):
            for word in range(in_words):
                b.set(f"win{k}_{word}", b.get(f"win{k - 1}_{word}"))
        for word in range(in_words):
            b.set(f"win0_{word}", b.read(f"i{word}", signed=False))
        b.set("out", 0)
        with b.loop("BIT", 32, pipeline=True, unroll=d.unroll) as bit:
            b.set("acc", 0)
            for k in range(d.kernel):
                for word in range(in_words):
                    base = (k * 32 * in_words) + word
                    idx = b.cast(
                        b.add(b.mul(b.cast(bit, 8, signed=False),
                                    in_words), base),
                        abits, signed=False)
                    wv = b.load("w", idx)
                    x = b.xor(b.get(f"win{k}_{word}"), wv)
                    act = b.xor(x, 0xFFFFFFFF)        # xnor
                    pc = emit_popcount32(b, table, act)
                    b.set("acc", b.cast(b.add(b.get("acc"), pc), 16,
                                        signed=False))
            fired = b.ge(b.get("acc"),
                         b.load("thr", b.cast(bit, 5, signed=False)))
            placed = b.shl(b.cast(fired, 32, signed=False),
                           b.cast(bit, 5, signed=False))
            b.set("out", b.cast(b.or_(b.get("out"), placed), 32,
                                signed=False))
        b.write("o0", b.get("out"))
        b.write("o1", b.get("out"))
    return b.build()


def _pool(name: str, d: Dims, level: int):
    """2x2 word-wise OR pooling of both half-level streams."""
    side = d.side_at(level)              # side *entering* the pool level
    b = OperatorBuilder(name, inputs=[("a", 32), ("b", 32)],
                        outputs=[("a0", 32), ("a1", 32),
                                 ("b0", 32), ("b1", 32)])
    half = side // 2
    b.array("rowa", half, 32, signed=False)
    b.array("rowb", half, 32, signed=False)
    bits = max(1, (max(half - 1, 1)).bit_length())
    b.variable("keep_a", 32, signed=False)
    b.variable("keep_b", 32, signed=False)
    with b.loop("ROW", side) as r:
        with b.loop("COL", half, pipeline=True) as c:
            a = b.or_(b.read("a", signed=False),
                      b.read("a", signed=False))   # horizontal OR
            bb = b.or_(b.read("b", signed=False),
                       b.read("b", signed=False))
            idx = b.cast(c, bits, signed=False)
            odd = b.and_(b.cast(r, 16, signed=False), 1)
            with b.if_(b.eq(odd, 0)):
                b.store("rowa", idx, b.cast(a, 32, signed=False))
                b.store("rowb", idx, b.cast(bb, 32, signed=False))
            with b.orelse():
                va = b.or_(b.load("rowa", idx), a)
                vb = b.or_(b.load("rowb", idx), bb)
                for port, val in (("a0", va), ("a1", va),
                                  ("b0", vb), ("b1", vb)):
                    b.write(port, b.cast(val, 32, signed=False))
    return b.build()


def _fc(name: str, ports: int, words_per_port: int, out_bits: int,
        out_words: int, unroll: int, weight_words: int = 0,
        emit_scores: bool = False):
    """Fully-connected binary layer over one or two input streams.

    ``weight_words`` overrides the ROM's per-neuron word count (the
    real layer mixes the full channel depth; see :class:`Dims`).
    """
    in_words = ports * words_per_port
    ins = [(f"in{k}", 32) for k in range(ports)]
    b = OperatorBuilder(name, inputs=ins, outputs=[("out", 32)])
    table = declare_popcount_table(b)
    rom_words = max(in_words, weight_words)
    depth = out_bits * rom_words
    b.array("w", depth, 32, signed=False, init=_weights(name, depth),
            partition=True)
    b.array("acts", in_words, 32, signed=False, partition=True)
    b.variable("acc", 24, signed=False)
    b.variable("word", 32, signed=False)
    ibits = max(1, (max(in_words - 1, 1)).bit_length())
    abits = max(2, (depth - 1).bit_length())
    for k in range(ports):
        with b.loop(f"LOAD{k}", words_per_port, pipeline=True) as i:
            slot = b.cast(b.add(b.cast(i, 16, signed=False),
                                k * words_per_port),
                          ibits, signed=False)
            b.store("acts", slot, b.read(f"in{k}", signed=False))
    if emit_scores:
        with b.loop("NEURON", out_bits, pipeline=True,
                    unroll=unroll) as n:
            b.set("acc", 0)
            with b.loop("WORD", in_words) as wd:
                idx = b.cast(
                    b.add(b.mul(b.cast(n, 16, signed=False), rom_words),
                          b.cast(wd, 16, signed=False)),
                    abits, signed=False)
                wv = b.load("w", idx)
                act = b.load("acts", b.cast(wd, ibits, signed=False))
                pc = emit_popcount32(b, table,
                                     b.xor(b.xor(act, wv), 0xFFFFFFFF))
                b.set("acc", b.cast(b.add(b.get("acc"), pc), 24,
                                    signed=False))
            b.write("out", b.cast(b.get("acc"), 32))
        return b.build()
    per_word = max(1, out_bits // out_words)
    with b.loop("OWORD", out_words) as ow:
        b.set("word", 0)
        with b.loop("BIT", min(per_word, 32), pipeline=True,
                    unroll=unroll) as bit:
            b.set("acc", 0)
            with b.loop("WORD", in_words) as wd:
                neuron = b.add(b.mul(b.cast(ow, 16, signed=False),
                                     per_word),
                               b.cast(bit, 16, signed=False))
                idx = b.cast(
                    b.add(b.mul(neuron, rom_words),
                          b.cast(wd, 16, signed=False)),
                    abits, signed=False)
                wv = b.load("w", idx)
                act = b.load("acts", b.cast(wd, ibits, signed=False))
                pc = emit_popcount32(b, table,
                                     b.xor(b.xor(act, wv), 0xFFFFFFFF))
                b.set("acc", b.cast(b.add(b.get("acc"), pc), 24,
                                    signed=False))
            fired = b.ge(b.get("acc"), 16 * in_words)
            placed = b.shl(b.cast(fired, 32, signed=False),
                           b.cast(bit, 5, signed=False))
            b.set("word", b.cast(b.or_(b.get("word"), placed), 32,
                                 signed=False))
        b.write("out", b.get("word"))
    return b.build()


def _argmax(scores: int):
    b = OperatorBuilder("argmax", inputs=[("in", 32)],
                        outputs=[("Output_1", 32)])
    b.variable("best", 32, signed=False)
    b.variable("best_idx", 8, signed=False)
    with b.loop("SCORE", scores, pipeline=True) as i:
        s = b.read("in", signed=False)
        better = b.gt(s, b.get("best"))
        b.set("best", b.cast(b.select(better, s, b.get("best")), 32,
                             signed=False))
        b.set("best_idx", b.cast(
            b.select(better, b.cast(i, 8, signed=False),
                     b.get("best_idx")), 8, signed=False))
    b.write("Output_1", b.cast(b.get("best_idx"), 32))
    return b.build()


def _flat_words(d: Dims) -> int:
    """Words entering fc1 per pool3 port (flattened final feature map)."""
    final_side = d.side_at(7)            # after all three pools
    return final_side * final_side


def _build_for(d: Dims):
    """All 22 specs, in wiring order."""
    specs = [_unpack(d), _quant(d)]
    for level in range(1, 7):
        words = 1 if level == 1 else 2
        for half in ("a", "b"):
            specs.append(_conv(f"conv{level}{half}", d, level, words))
        if level in (2, 4, 6):
            specs.append(_pool(f"pool{level // 2}", d, level))
    flat = _flat_words(d)
    specs.append(_fc("fc1a", 2, flat, d.fc_bits, 8, d.unroll,
                     weight_words=d.fc1_weight_words))
    specs.append(_fc("fc1b", 2, flat, d.fc_bits, 8, d.unroll,
                     weight_words=d.fc1_weight_words))
    specs.append(_fc("fc2", 2, 8, d.fc_bits, 8, d.unroll,
                     weight_words=d.fc1_weight_words // 4))
    specs.append(_fc("fc3", 1, 8, 10, 1, 1, emit_scores=True))
    specs.append(_argmax(10))
    return specs


def build_graph() -> DataflowGraph:
    g = DataflowGraph("bnn")
    for paper_spec, sample_spec in zip(_build_for(PAPER),
                                       _build_for(SAMPLE)):
        add_spec_operator(g, paper_spec, sample_spec=sample_spec)

    g.connect("unpack.px", "quant.px")
    g.connect("quant.q0", "conv1a.i0")
    g.connect("quant.q1", "conv1b.i0")
    g.connect("conv1a.o0", "conv2a.i0")
    g.connect("conv1b.o0", "conv2a.i1")
    g.connect("conv1a.o1", "conv2b.i0")
    g.connect("conv1b.o1", "conv2b.i1")
    g.connect("conv2a.o0", "pool1.a")
    g.connect("conv2b.o0", "pool1.b")
    g.connect("pool1.a0", "conv3a.i0")
    g.connect("pool1.b0", "conv3a.i1")
    g.connect("pool1.a1", "conv3b.i0")
    g.connect("pool1.b1", "conv3b.i1")
    g.connect("conv3a.o0", "conv4a.i0")
    g.connect("conv3b.o0", "conv4a.i1")
    g.connect("conv3a.o1", "conv4b.i0")
    g.connect("conv3b.o1", "conv4b.i1")
    g.connect("conv4a.o0", "pool2.a")
    g.connect("conv4b.o0", "pool2.b")
    g.connect("pool2.a0", "conv5a.i0")
    g.connect("pool2.b0", "conv5a.i1")
    g.connect("pool2.a1", "conv5b.i0")
    g.connect("pool2.b1", "conv5b.i1")
    g.connect("conv5a.o0", "conv6a.i0")
    g.connect("conv5b.o0", "conv6a.i1")
    g.connect("conv5a.o1", "conv6b.i0")
    g.connect("conv5b.o1", "conv6b.i1")
    g.connect("conv6a.o0", "pool3.a")
    g.connect("conv6b.o0", "pool3.b")
    # fc1 halves each mix the whole final map (both pool3 copies).
    g.connect("pool3.a0", "fc1a.in0")
    g.connect("pool3.b0", "fc1a.in1")
    g.connect("pool3.a1", "fc1b.in0")
    g.connect("pool3.b1", "fc1b.in1")
    g.connect("fc1a.out", "fc2.in0")
    g.connect("fc1b.out", "fc2.in1")
    g.connect("fc2.out", "fc3.in0")
    g.connect("fc3.out", "argmax.in")
    # conv level 2/4/6 second copies are unused by pools; the duplicate
    # outputs of those levels feed the pools' partner ports instead, so
    # tie the spares off as debug taps the host can sample.
    g.expose_output("dbg_a", "conv2a.o1")
    g.expose_output("dbg_b", "conv2b.o1")
    g.expose_output("dbg_c", "conv4a.o1")
    g.expose_output("dbg_d", "conv4b.o1")
    g.expose_output("dbg_e", "conv6a.o1")
    g.expose_output("dbg_f", "conv6b.o1")
    g.expose_input("Input_1", "unpack.Input_1")
    g.expose_output("Output_1", "argmax.Output_1")
    return g


def sample_inputs() -> Dict[str, List[int]]:
    rng = deterministic_rng("bnn-image")
    side = SAMPLE.image
    return {"Input_1": [rng.randrange(256)
                        for _ in range(side * side * 3)]}


def build() -> RosettaApp:
    return finish_app(
        "bnn",
        "binarised CNN (6 conv + 3 FC levels) with on-chip weights",
        build_graph(), sample_inputs(), PAPER_TOKENS)
