"""Face detection: a Viola-Jones-style cascade, split by region and set.

Following the paper's decomposition (Sec. 7.2): the two main stages are
strong filtering (split across four operators by image region) and weak
filtering (split across ten operators by filter set), around integral-
image preparation and result merging — 20 operators:

``unpack -> integral -> sq_integral -> 4 x strong -> gather ->
10 x weak (chained) -> merge``

Each strong operator keeps a sliding window buffer over the integral
stream of its region and evaluates a bank of trained rectangle features
(differences of integral sums against thresholds); the weak chain
refines candidate scores with per-set threshold tables, using an
``isqrt``-based variance normalisation, and the merger emits one
detection word per window.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.graph import DataflowGraph
from repro.hls.frontend import OperatorBuilder
from repro.rosetta.base import (
    RosettaApp,
    add_spec_operator,
    deterministic_rng,
    finish_app,
)

#: Strong-filter region operators / weak-filter set operators.
STRONG, WEAK = 4, 10

#: Paper-scale image (Rosetta face detection: 320 x 240).
PAPER_H, PAPER_W = 240, 320

#: Sample-scale image.
H, W = 8, 8

#: Rectangle features evaluated per strong operator.
PAPER_FEATURES, FEATURES = 64, 4

PAPER_TOKENS = PAPER_H * PAPER_W


def _thresholds(tag: str, count: int) -> List[int]:
    rng = deterministic_rng(f"face-{tag}")
    return [rng.randrange(1, 1 << 14) for _ in range(count)]


def _unpack(h: int, w: int):
    b = OperatorBuilder("unpack", inputs=[("Input_1", 32)],
                        outputs=[("p_int", 32), ("p_sq", 32)])
    with b.loop("PIX", h * w, pipeline=True):
        p = b.read("Input_1", signed=False)
        b.write("p_int", p)
        b.write("p_sq", p)
    return b.build()


def _integral(h: int, w: int, squared: bool, fan_out: int):
    """Streaming integral image (row prefix + column accumulation).

    The squared variant emits one *per-row energy* word (the weak
    cascade normalises per row), while the plain variant fans the
    per-pixel integral out to every strong-filter region.
    """
    name = "sq_integral" if squared else "integral"
    port = "p_sq" if squared else "p_int"
    outs = [(f"i{k}", 32) for k in range(fan_out)]
    b = OperatorBuilder(name, inputs=[(port, 32)], outputs=outs)
    b.array("colsum", w, 32, signed=False)
    b.variable("rowsum", 32, signed=False)
    bits = max(3, (w - 1).bit_length())
    with b.loop("ROW", h):
        b.set("rowsum", 0)
        with b.loop("COL", w, pipeline=True) as c:
            p = b.cast(b.read(port, signed=False), 16, signed=False)
            v = b.cast(b.mul(p, p), 32) if squared else b.cast(p, 32)
            b.set("rowsum", b.cast(b.add(b.get("rowsum"), v), 32,
                                   signed=False))
            idx = b.cast(c, bits, signed=False)
            above = b.load("colsum", idx)
            total = b.cast(b.add(above, b.get("rowsum")), 32,
                           signed=False)
            b.store("colsum", idx, total)
            if not squared:
                for out_name, _w in outs:
                    b.write(out_name, total)
        if squared:
            # One energy word per row.
            b.write(outs[0][0], b.cast(b.get("rowsum"), 32))
    return b.build()


def _strong(region: int, h: int, w: int, features: int, unroll: int):
    """Rectangle features over a sliding integral window, one region.

    Every strong operator sees the whole integral stream (keeping its
    window buffer warm) but only its band of rows emits candidates.
    """
    name = f"strong_{region}"
    b = OperatorBuilder(name, inputs=[("ii", 32)], outputs=[("cand", 32)])
    window = min(16, w)
    band = h // STRONG
    b.array("win", window, 32, signed=False, partition=True)
    b.array("off_a", features, 8, signed=False, partition=True,
            init=[t % window for t in _thresholds(f"offa{region}",
                                                  features)])
    b.array("off_b", features, 8, signed=False, partition=True,
            init=[t % window for t in _thresholds(f"offb{region}",
                                                  features)])
    b.array("thresh", features, 16, signed=False, partition=True,
            init=[t & 0x3FFF for t in _thresholds(f"th{region}",
                                                  features)])
    b.variable("score", 16, signed=False)
    b.variable("wp", 8, signed=False)          # window write pointer
    wbits = max(2, (window - 1).bit_length())
    fbits = max(2, (features - 1).bit_length())
    with b.loop("ROW", h) as row:
        with b.loop("COL", w):
            v = b.read("ii", signed=False)
            wp = b.get("wp")
            b.store("win", b.cast(wp, wbits, signed=False), v)
            nxt = b.and_(b.add(wp, 1), window - 1)
            b.set("wp", b.cast(nxt, 8, signed=False))
            in_band_lo = b.ge(b.cast(row, 16, signed=False),
                              region * band)
            in_band_hi = b.lt(b.cast(row, 16, signed=False),
                              (region + 1) * band)
            with b.if_(b.and_(in_band_lo, in_band_hi)):
                b.set("score", 0)
                # First half of the bank uses trained multiplier
                # weights (DSP-mapped); the rest use shift weighting.
                half = max(1, features // 2)
                with b.loop("FEATM", half, pipeline=True,
                            unroll=max(1, unroll // 2)) as fm:
                    fi = b.cast(fm, fbits, signed=False)
                    oa = b.cast(b.load("off_a", fi), wbits, signed=False)
                    ia = b.cast(b.load("win", oa), 24)
                    coeff = b.cast(b.load("thresh", fi), 8, signed=False)
                    weighted = b.shr(b.mul(ia, coeff), 6)
                    vote = b.gt(b.cast(weighted, 26),
                                b.load("thresh", fi))
                    b.set("score", b.cast(
                        b.add(b.get("score"), b.cast(vote, 16)), 16,
                        signed=False))
                with b.loop("FEAT", features, pipeline=True,
                            unroll=unroll) as f:
                    fi = b.cast(f, fbits, signed=False)
                    oa = b.cast(b.load("off_a", fi), wbits, signed=False)
                    ob = b.cast(b.load("off_b", fi), wbits, signed=False)
                    # Haar rectangle: four integral corners per arm.
                    a1 = b.cast(b.load("win", oa), 24)
                    a2 = b.cast(b.load("win", b.cast(
                        b.and_(b.add(oa, 1), window - 1), wbits,
                        signed=False)), 24)
                    b1 = b.cast(b.load("win", ob), 24)
                    b2 = b.cast(b.load("win", b.cast(
                        b.and_(b.add(ob, 2), window - 1), wbits,
                        signed=False)), 24)
                    arm_a = b.cast(b.sub(a1, a2), 24)
                    arm_b = b.cast(b.sub(b1, b2), 24)
                    # 2:1:0.5 rectangle weighting via shifts.
                    weighted = b.sub(b.shl(b.cast(arm_a, 26), 1),
                                     b.add(b.cast(arm_b, 26),
                                           b.shr(arm_b, 1)))
                    vote = b.gt(b.abs_(b.cast(weighted, 24)),
                                b.load("thresh", fi))
                    b.set("score", b.cast(
                        b.add(b.get("score"), b.cast(vote, 16)), 16,
                        signed=False))
                b.write("cand", b.cast(b.get("score"), 32))
    return b.build()


def _gather(h: int, w: int):
    """Splice the regions' candidate bands back into frame order,
    normalising by the per-row energy (isqrt of the squared sums)."""
    ins = [(f"s{r}", 32) for r in range(STRONG)] + [("sq", 32)]
    b = OperatorBuilder("gather", inputs=ins, outputs=[("cand", 32)])
    band = h // STRONG
    for r in range(STRONG):
        with b.loop(f"BAND{r}", band):
            energy = b.read("sq", signed=False)
            norm = b.isqrt(b.cast(b.lshr(energy, 8), 24, signed=False))
            with b.loop(f"COLS{r}", w, pipeline=True):
                score = b.read(f"s{r}", signed=False)
                scaled = b.add(score, b.cast(norm, 32))
                b.write("cand", b.cast(scaled, 32))
    return b.build()


def _weak(index: int, h: int, w: int, features: int, unroll: int):
    """One weak-classifier set refining the candidate stream."""
    name = f"weak_{index:02d}"
    b = OperatorBuilder(name, inputs=[("in", 32)], outputs=[("out", 32)])
    b.array("tbl", features, 16, signed=False, partition=True,
            init=[t & 0x7FFF for t in _thresholds(f"weak{index}",
                                                  features)])
    fbits = max(2, (features - 1).bit_length())
    b.variable("acc", 32, signed=False)
    with b.loop("PIX", h * w):
        cand = b.read("in", signed=False)
        b.set("acc", cand)
        with b.loop("FEAT", features, pipeline=True, unroll=unroll) as f:
            t = b.load("tbl", b.cast(f, fbits, signed=False))
            level = b.cast(b.and_(cand, 0x7FFF), 16, signed=False)
            margin = b.cast(b.sub(b.cast(level, 17), b.cast(t, 17)), 17)
            passed = b.lt(margin, 0)
            # Soft vote: failures subtract a shifted margin, passes +1.
            penalty = b.cast(b.shr(margin, 3), 17)
            bumped = b.select(passed, b.add(b.get("acc"), 1),
                              b.cast(b.sub(b.cast(b.get("acc"), 33),
                                           b.cast(penalty, 33)), 32,
                                     signed=False))
            b.set("acc", b.cast(bumped, 32, signed=False))
        b.write("out", b.get("acc"))
    return b.build()


def _nms(h: int, w: int):
    """Non-maximum suppression along the scan order (3-tap window)."""
    b = OperatorBuilder("nms", inputs=[("in", 32)], outputs=[("out", 32)])
    b.variable("p1", 32, signed=False)
    b.variable("p2", 32, signed=False)
    with b.loop("PIX", h * w, pipeline=True):
        cur = b.read("in", signed=False)
        keep = b.and_(b.ge(cur, b.get("p1")), b.ge(cur, b.get("p2")))
        out = b.select(keep, cur, b.and_(cur, 0x7FFF0000))
        b.set("p2", b.get("p1"))
        b.set("p1", cur)
        b.write("out", b.cast(out, 32, signed=False))
    return b.build()


def _merge(h: int, w: int):
    b = OperatorBuilder("merge", inputs=[("in", 32)],
                        outputs=[("Output_1", 32)])
    with b.loop("PIX", h * w, pipeline=True):
        score = b.read("in", signed=False)
        face = b.ge(b.cast(b.and_(score, 0xFFFF), 16, signed=False),
                    FEATURES * (WEAK // 2))
        packed = b.or_(b.shl(b.cast(face, 32), 31), score)
        b.write("Output_1", b.cast(packed, 32, signed=False))
    return b.build()


def _recipes():
    paper, sample = [], []
    paper.append(_unpack(PAPER_H, PAPER_W))
    sample.append(_unpack(H, W))
    paper.append(_integral(PAPER_H, PAPER_W, False, STRONG))
    sample.append(_integral(H, W, False, STRONG))
    paper.append(_integral(PAPER_H, PAPER_W, True, 1))
    sample.append(_integral(H, W, True, 1))
    for region in range(STRONG):
        paper.append(_strong(region, PAPER_H, PAPER_W,
                             PAPER_FEATURES, unroll=64))
        sample.append(_strong(region, H, W, FEATURES, unroll=1))
    paper.append(_gather(PAPER_H, PAPER_W))
    sample.append(_gather(H, W))
    for index in range(WEAK):
        paper.append(_weak(index, PAPER_H, PAPER_W, PAPER_FEATURES,
                           unroll=64))
        sample.append(_weak(index, H, W, FEATURES, unroll=1))
    paper.append(_nms(PAPER_H, PAPER_W))
    sample.append(_nms(H, W))
    paper.append(_merge(PAPER_H, PAPER_W))
    sample.append(_merge(H, W))
    return zip(paper, sample)


def build_graph() -> DataflowGraph:
    g = DataflowGraph("face-detection")
    for paper_spec, sample_spec in _recipes():
        add_spec_operator(g, paper_spec, sample_spec=sample_spec)
    g.connect("unpack.p_int", "integral.p_int")
    g.connect("unpack.p_sq", "sq_integral.p_sq")
    for region in range(STRONG):
        g.connect(f"integral.i{region}", f"strong_{region}.ii")
        g.connect(f"strong_{region}.cand", f"gather.s{region}")
    g.connect("sq_integral.i0", "gather.sq")
    previous = "gather.cand"
    for index in range(WEAK):
        g.connect(previous, f"weak_{index:02d}.in")
        previous = f"weak_{index:02d}.out"
    g.connect(previous, "nms.in")
    g.connect("nms.out", "merge.in")
    g.expose_input("Input_1", "unpack.Input_1")
    g.expose_output("Output_1", "merge.Output_1")
    return g


def sample_inputs() -> Dict[str, List[int]]:
    rng = deterministic_rng("face-image")
    return {"Input_1": [rng.randrange(256) for _ in range(H * W)]}


def build() -> RosettaApp:
    return finish_app(
        "face-detection",
        "Viola-Jones cascade split by image region and filter set",
        build_graph(), sample_inputs(), PAPER_TOKENS)
