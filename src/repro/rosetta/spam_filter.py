"""SPAM filtering: logistic-regression scoring with parallel dot products.

The paper decomposes the data-parallel feature vectors into separate
dot-product operators plus decompose/reduce operators (Sec. 7.2).
Sixteen operators:

``scatter -> 12 x dot_** -> reduce -> norm -> classify``

Each sample is a feature vector in Q8.8; ``scatter`` deals consecutive
chunks to the dot operators, each of which holds its shard of the
trained weight vector in on-chip memory and accumulates a fixed-point
partial product; ``reduce`` sums the partials, ``norm`` rescales, and
``classify`` applies a 64-entry sigmoid table and a 0.5 threshold.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.graph import DataflowGraph
from repro.hls.frontend import OperatorBuilder
from repro.rosetta.base import (
    RosettaApp,
    add_spec_operator,
    deterministic_rng,
    finish_app,
)

#: Parallel dot-product lanes.
LANES = 12

#: Features per sample (divisible by LANES).
PAPER_FEATURES, FEATURES = 1_020, 24

#: Samples per input batch.
PAPER_SAMPLES, SAMPLES = 5_000, 3

#: Fixed-point format of features/weights (Q8.8).
FRAC = 8

PAPER_TOKENS = PAPER_SAMPLES * PAPER_FEATURES

#: Sigmoid lookup: 64 entries over [-8, 8), Q1.8 outputs.
SIGMOID_TABLE = [
    int(round(255 / (1 + 2.718281828 ** -((i - 32) / 4.0))))
    for i in range(64)
]


def _weights(lane: int, chunk: int) -> List[int]:
    rng = deterministic_rng(f"spam-weights-{lane}")
    return [int(rng.uniform(-2, 2) * (1 << FRAC)) & 0xFFFFFFFF
            for _ in range(chunk)]


def _scatter(samples: int, features: int, unroll: int = 1):
    chunk = features // LANES
    outs = [(f"c{lane}", 32) for lane in range(LANES)]
    b = OperatorBuilder("scatter", inputs=[("Input_1", 32)], outputs=outs)
    with b.loop("SAMPLE", samples):
        for lane in range(LANES):
            with b.loop(f"CHUNK{lane}", chunk, pipeline=True,
                        unroll=unroll):
                b.write(f"c{lane}", b.read("Input_1", signed=False))
    return b.build()


def _dot(lane: int, samples: int, features: int, unroll: int):
    chunk = features // LANES
    b = OperatorBuilder(f"dot_{lane:02d}", inputs=[(f"c{lane}", 32)],
                        outputs=[("partial", 32)])
    b.array("w", chunk, 32, init=_weights(lane, chunk), partition=True)
    b.variable("acc", 32)
    bits = max(2, (chunk - 1).bit_length())
    with b.loop("SAMPLE", samples):
        b.set("acc", 0)
        with b.loop("FEAT", chunk, pipeline=True, unroll=unroll) as i:
            x = b.cast(b.read(f"c{lane}"), 16)
            w = b.cast(b.load("w", b.cast(i, bits, signed=False)), 16)
            term = b.shr(b.mul(x, w), FRAC)          # Q8.8 product
            b.set("acc", b.cast(b.add(b.get("acc"), b.cast(term, 32)),
                                32))
        b.write("partial", b.get("acc"))
    return b.build()


def _reduce(samples: int):
    ins = [(f"p{lane}", 32) for lane in range(LANES)]
    b = OperatorBuilder("reduce", inputs=ins, outputs=[("sum", 32)])
    with b.loop("SAMPLE", samples, pipeline=True):
        total = None
        for lane in range(LANES):
            part = b.read(f"p{lane}")
            total = part if total is None else b.add(total, part)
        b.write("sum", b.cast(total, 32))
    return b.build()


def _norm(samples: int, features: int):
    """Scale the dot product by 1/features (fixed-point divide)."""
    b = OperatorBuilder("norm", inputs=[("sum", 32)],
                        outputs=[("score", 32)])
    with b.loop("SAMPLE", samples, pipeline=True):
        s = b.read("sum")
        scaled = b.div(b.cast(s, 32), max(1, features // 8))
        b.write("score", b.cast(scaled, 32))
    return b.build()


def _classify(samples: int):
    b = OperatorBuilder("classify", inputs=[("score", 32)],
                        outputs=[("Output_1", 32)])
    b.array("sigmoid", 64, 16, signed=False, init=SIGMOID_TABLE)
    with b.loop("SAMPLE", samples, pipeline=True):
        s = b.read("score")
        # Map score (Q8.8) into the 64-entry table over [-8, 8).
        q = b.cast(b.add(b.shr(s, 6), 32), 16)
        clamped = b.max_(b.min_(q, 63), 0)
        prob = b.load("sigmoid", b.cast(clamped, 6, signed=False))
        spam = b.ge(prob, 128)                       # p >= 0.5
        b.write("Output_1", b.cast(prob, 32))
        b.write("Output_1", b.cast(spam, 32))
    return b.build()


def build_graph() -> DataflowGraph:
    g = DataflowGraph("spam-filter")
    add_spec_operator(g, _scatter(PAPER_SAMPLES, PAPER_FEATURES, unroll=4),
                      sample_spec=_scatter(SAMPLES, FEATURES))
    for lane in range(LANES):
        add_spec_operator(
            g, _dot(lane, PAPER_SAMPLES, PAPER_FEATURES, unroll=24),
            sample_spec=_dot(lane, SAMPLES, FEATURES, unroll=1))
    add_spec_operator(g, _reduce(PAPER_SAMPLES),
                      sample_spec=_reduce(SAMPLES))
    add_spec_operator(g, _norm(PAPER_SAMPLES, PAPER_FEATURES),
                      sample_spec=_norm(SAMPLES, FEATURES))
    add_spec_operator(g, _classify(PAPER_SAMPLES),
                      sample_spec=_classify(SAMPLES))
    for lane in range(LANES):
        g.connect(f"scatter.c{lane}", f"dot_{lane:02d}.c{lane}")
        g.connect(f"dot_{lane:02d}.partial", f"reduce.p{lane}")
    g.connect("reduce.sum", "norm.sum")
    g.connect("norm.score", "classify.score")
    g.expose_input("Input_1", "scatter.Input_1")
    g.expose_output("Output_1", "classify.Output_1")
    return g


def sample_inputs() -> Dict[str, List[int]]:
    rng = deterministic_rng("spam-samples")
    tokens = [int(rng.uniform(-1.5, 1.5) * (1 << FRAC)) & 0xFFFFFFFF
              for _ in range(SAMPLES * FEATURES)]
    return {"Input_1": tokens}


def reference(inputs):
    """Pure-Python golden model of the fixed-point scoring pipeline."""
    def s16(v):
        v &= 0xFFFF
        return v - 0x10000 if v >> 15 else v

    def s32(v):
        v &= 0xFFFFFFFF
        return v - 0x100000000 if v >> 31 else v

    tokens = inputs["Input_1"]
    chunk = FEATURES // LANES
    out = []
    for sample in range(SAMPLES):
        base = sample * FEATURES
        total = 0
        for lane in range(LANES):
            weights = _weights(lane, chunk)
            acc = 0
            for i in range(chunk):
                x = s16(tokens[base + lane * chunk + i])
                w = s16(weights[i])
                acc = s32(acc + ((x * w) >> FRAC))
            total = s32(total + acc)
        scaled = int(abs(total) / max(1, FEATURES // 8)) *             (1 if total >= 0 else -1)
        q = max(0, min(63, (scaled >> 6) + 32))
        prob = SIGMOID_TABLE[q]
        out.append(prob)
        out.append(1 if prob >= 128 else 0)
    return {"Output_1": out}


def build() -> RosettaApp:
    return finish_app(
        "spam-filter",
        "logistic-regression SPAM scorer with parallel dot products",
        build_graph(), sample_inputs(), PAPER_TOKENS,
        reference=reference)
