"""Optical flow: the Lucas-Kanade task graph of Fig. 2.

The computation already has the shape of a dataflow task graph in
Rosetta; the paper starts with one operator per task and splits large
tasks by separable component (x, y, z).  This implementation follows
that decomposition: unpack, per-axis gradients, per-axis smoothing
weights, the five structure-tensor products, tensor packing, the
``flow_calc`` division kernel of Fig. 2(d), output smoothing and
packing — 16 operators.

Every kernel is built twice from the same generator: at the paper's
436 x 1024 frame (attached as the compile-flow spec, with the unroll
factors the tuned implementation uses) and at a small sample frame that
the simulators execute.  Per input pixel the stream carries two words
(co-located pixels of two frames); the output carries the two flow
components in Q24.8.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.graph import DataflowGraph
from repro.hls.frontend import OperatorBuilder
from repro.rosetta.base import (
    RosettaApp,
    add_spec_operator,
    deterministic_rng,
    finish_app,
)

#: Paper-scale frame (Rosetta optical flow).
PAPER_HEIGHT, PAPER_WIDTH = 436, 1024

#: Sample-scale frame executed by the simulators.
HEIGHT, WIDTH = 8, 8

#: Fractional bits of the flow output (Q24.8).
FRAC = 8

#: Paper-scale stream: two words per pixel.
PAPER_TOKENS = PAPER_HEIGHT * PAPER_WIDTH * 2


def _line_bits(width: int) -> int:
    return max(4, (width - 1).bit_length())


def _unpack(h: int, w: int):
    b = OperatorBuilder("unpack", inputs=[("Input_1", 32)],
                        outputs=[("a_x", 32), ("a_y", 32), ("a_z", 32),
                                 ("b_z", 32)])
    with b.loop("PIX", h * w, pipeline=True):
        pa = b.read("Input_1", signed=False)
        pb = b.read("Input_1", signed=False)
        b.write("a_x", pa)
        b.write("a_y", pa)
        b.write("a_z", pa)
        b.write("b_z", pb)
    return b.build()


def _grad_x(h: int, w: int):
    b = OperatorBuilder("grad_x", inputs=[("p", 32)], outputs=[("gx", 32)])
    b.variable("prev", 16)
    with b.loop("ROW", h):
        b.set("prev", 0)
        with b.loop("COL", w, pipeline=True):
            cur = b.cast(b.read("p", signed=False), 16)
            g = b.cast(b.sub(cur, b.get("prev")), 16)
            b.set("prev", cur)
            b.write("gx", b.cast(g, 32))
    return b.build()


def _grad_y(h: int, w: int):
    b = OperatorBuilder("grad_y", inputs=[("p", 32)], outputs=[("gy", 32)])
    b.array("line", w, 16)
    bits = _line_bits(w)
    with b.loop("ROW", h):
        with b.loop("COL", w, pipeline=True) as c:
            cur = b.cast(b.read("p", signed=False), 16)
            idx = b.cast(c, bits, signed=False)
            above = b.load("line", idx)
            b.store("line", idx, cur)
            b.write("gy", b.cast(b.cast(b.sub(cur, above), 16), 32))
    return b.build()


def _grad_z(h: int, w: int):
    b = OperatorBuilder("grad_z", inputs=[("pa", 32), ("pb", 32)],
                        outputs=[("gz", 32)])
    with b.loop("PIX", h * w, pipeline=True):
        a = b.cast(b.read("pa", signed=False), 16)
        c = b.cast(b.read("pb", signed=False), 16)
        b.write("gz", b.cast(b.cast(b.sub(c, a), 16), 32))
    return b.build()


def _weight(axis: str, fan_out: int, h: int, w: int, unroll: int):
    """Running 4-tap smoothing of one gradient axis, with fan-out."""
    outs = [(f"w{axis}{i}", 32) for i in range(fan_out)]
    b = OperatorBuilder(f"weight_{axis}", inputs=[(f"g{axis}", 32)],
                        outputs=outs)
    for tap in range(4):
        b.variable(f"t{tap}", 16)
    # Two smoothing line buffers, as the windowed kernel keeps per axis.
    b.array("lines", 2 * w, 16)
    with b.loop("PIX", h * w, pipeline=True, unroll=unroll):
        g = b.cast(b.read(f"g{axis}"), 16)
        # Shift the tap registers and take a weighted sum 1-3-3-1.
        b.set("t3", b.get("t2"))
        b.set("t2", b.get("t1"))
        b.set("t1", b.get("t0"))
        b.set("t0", g)
        acc = b.add(b.get("t0"), b.get("t3"))
        mid = b.mul(b.add(b.get("t1"), b.get("t2")), 3)
        total = b.cast(b.shr(b.add(acc, mid), 3), 16)
        for name, _w in outs:
            b.write(name, b.cast(total, 32))
    return b.build()


def _tensor(name: str, in_a: str, in_b: str, h: int, w: int, unroll: int):
    """One structure-tensor product t = smooth(a) * smooth(b)."""
    inputs = [(in_a, 32)] if in_a == in_b else [(in_a, 32), (in_b, 32)]
    b = OperatorBuilder(name, inputs=inputs, outputs=[("t", 32)])
    with b.loop("PIX", h * w, pipeline=True, unroll=unroll):
        a = b.cast(b.read(in_a), 16)
        c = a if in_a == in_b else b.cast(b.read(in_b), 16)
        product = b.cast(b.mul(a, c), 32)
        b.write("t", b.cast(b.shr(product, 2), 32))
    return b.build()


def _tensor_pack(h: int, w: int):
    b = OperatorBuilder("tensor_pack",
                        inputs=[("txx", 32), ("tyy", 32), ("txy", 32),
                                ("txz", 32), ("tyz", 32)],
                        outputs=[("t", 32)])
    with b.loop("PIX", h * w, pipeline=True):
        for port in ("txx", "tyy", "txy", "txz", "tyz"):
            b.write("t", b.read(port, signed=False))
    return b.build()


def _flow_calc(h: int, w: int, unroll: int):
    """Fig. 2(d): solve the 2x2 LK system per pixel, guard denom == 0."""
    b = OperatorBuilder("flow_calc", inputs=[("t", 32)],
                        outputs=[("Output_1", 32)])
    b.variable("buf0", 32)
    b.variable("buf1", 32)
    with b.loop("PIX", h * w, pipeline=True, unroll=unroll):
        txx = b.cast(b.read("t"), 24)
        tyy = b.cast(b.read("t"), 24)
        txy = b.cast(b.read("t"), 24)
        txz = b.cast(b.read("t"), 24)
        tyz = b.cast(b.read("t"), 24)
        denom = b.cast(b.sub(b.mul(txx, tyy), b.mul(txy, txy)), 32)
        numer0 = b.cast(b.sub(b.mul(txy, tyz), b.mul(txz, tyy)), 32)
        numer1 = b.cast(b.sub(b.mul(txy, txz), b.mul(tyz, txx)), 32)
        with b.if_(b.eq(denom, 0)):
            b.set("buf0", 0)
            b.set("buf1", 0)
        with b.orelse():
            # Pre-scale the (bounded) numerators into Q24.8 before the
            # 32-bit divide, as the softcore target requires.
            n0 = b.shl(b.cast(b.cast(numer0, 24), 32), FRAC)
            n1 = b.shl(b.cast(b.cast(numer1, 24), 32), FRAC)
            b.set("buf0", b.cast(b.div(n0, denom), 32))
            b.set("buf1", b.cast(b.div(n1, denom), 32))
        b.write("Output_1", b.get("buf0"))
        b.write("Output_1", b.get("buf1"))
    return b.build()


def _smooth_out(h: int, w: int, unroll: int = 1):
    """3-tap smoothing of the flow field (per component)."""
    b = OperatorBuilder("smooth_out", inputs=[("f", 32)],
                        outputs=[("fs", 32)])
    b.variable("px", 32)
    b.variable("py", 32)
    with b.loop("PIX", h * w, pipeline=True, unroll=unroll):
        fx = b.cast(b.read("f"), 32)
        fy = b.cast(b.read("f"), 32)
        sx = b.cast(b.shr(b.add(b.get("px"), fx), 1), 32)
        sy = b.cast(b.shr(b.add(b.get("py"), fy), 1), 32)
        b.set("px", fx)
        b.set("py", fy)
        b.write("fs", sx)
        b.write("fs", sy)
    return b.build()


def _pack_out(h: int, w: int):
    b = OperatorBuilder("pack_out", inputs=[("f", 32)],
                        outputs=[("Output", 32)])
    with b.loop("PIX", 2 * h * w, pipeline=True):
        b.write("Output", b.read("f", signed=False))
    return b.build()


#: (builder, paper kwargs, sample kwargs) per operator.
def _operator_recipes():
    paper = dict(h=PAPER_HEIGHT, w=PAPER_WIDTH)
    sample = dict(h=HEIGHT, w=WIDTH)
    recipes = [
        (_unpack, {}, {}),
        (_grad_x, {}, {}),
        (_grad_y, {}, {}),
        (_grad_z, {}, {}),
        (lambda **kw: _weight("x", 3, **kw), {"unroll": 16}, {"unroll": 1}),
        (lambda **kw: _weight("y", 3, **kw), {"unroll": 16}, {"unroll": 1}),
        (lambda **kw: _weight("z", 2, **kw), {"unroll": 16}, {"unroll": 1}),
        (lambda **kw: _tensor("tensor_xx", "wx0", "wx0", **kw),
         {"unroll": 32}, {"unroll": 1}),
        (lambda **kw: _tensor("tensor_yy", "wy0", "wy0", **kw),
         {"unroll": 32}, {"unroll": 1}),
        (lambda **kw: _tensor("tensor_xy", "wx1", "wy1", **kw),
         {"unroll": 32}, {"unroll": 1}),
        (lambda **kw: _tensor("tensor_xz", "wx2", "wz0", **kw),
         {"unroll": 32}, {"unroll": 1}),
        (lambda **kw: _tensor("tensor_yz", "wy2", "wz1", **kw),
         {"unroll": 32}, {"unroll": 1}),
        (_tensor_pack, {}, {}),
        (_flow_calc, {"unroll": 8}, {"unroll": 1}),
        (_smooth_out, {"unroll": 4}, {}),
        (_pack_out, {}, {}),
    ]
    out = []
    for builder, paper_extra, sample_extra in recipes:
        out.append((builder(**paper, **paper_extra),
                    builder(**sample, **sample_extra)))
    return out


def build_graph() -> DataflowGraph:
    g = DataflowGraph("optical-flow")
    for paper_spec, sample_spec in _operator_recipes():
        add_spec_operator(g, paper_spec, sample_spec=sample_spec)

    g.connect("unpack.a_x", "grad_x.p")
    g.connect("unpack.a_y", "grad_y.p")
    g.connect("unpack.a_z", "grad_z.pa")
    g.connect("unpack.b_z", "grad_z.pb")
    g.connect("grad_x.gx", "weight_x.gx")
    g.connect("grad_y.gy", "weight_y.gy")
    g.connect("grad_z.gz", "weight_z.gz")
    g.connect("weight_x.wx0", "tensor_xx.wx0")
    g.connect("weight_y.wy0", "tensor_yy.wy0")
    g.connect("weight_x.wx1", "tensor_xy.wx1")
    g.connect("weight_y.wy1", "tensor_xy.wy1")
    g.connect("weight_x.wx2", "tensor_xz.wx2")
    g.connect("weight_z.wz0", "tensor_xz.wz0")
    g.connect("weight_y.wy2", "tensor_yz.wy2")
    g.connect("weight_z.wz1", "tensor_yz.wz1")
    g.connect("tensor_xx.t", "tensor_pack.txx")
    g.connect("tensor_yy.t", "tensor_pack.tyy")
    g.connect("tensor_xy.t", "tensor_pack.txy")
    g.connect("tensor_xz.t", "tensor_pack.txz")
    g.connect("tensor_yz.t", "tensor_pack.tyz")
    g.connect("tensor_pack.t", "flow_calc.t")
    g.connect("flow_calc.Output_1", "smooth_out.f")
    g.connect("smooth_out.fs", "pack_out.f")
    g.expose_input("Input_1", "unpack.Input_1")
    g.expose_output("Output_1", "pack_out.Output")
    return g


def sample_inputs() -> Dict[str, List[int]]:
    rng = deterministic_rng("optical-flow")
    tokens: List[int] = []
    for _pix in range(HEIGHT * WIDTH):
        a = rng.randrange(256)
        drift = rng.randrange(-8, 9)
        tokens.append(a)
        tokens.append(max(0, min(255, a + drift)))
    return {"Input_1": tokens}


def build() -> RosettaApp:
    return finish_app(
        "optical-flow",
        "Lucas-Kanade optical flow, one operator per dataflow task",
        build_graph(), sample_inputs(), PAPER_TOKENS)
