"""Shared infrastructure for the Rosetta applications.

Each app module exposes ``build() -> RosettaApp``; the registry here
gives the flows, tests and benchmarks one entry point.  Common IR
idioms (byte-table popcount, fixed-point dot products) live here so the
six kernels stay readable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import FlowError
from repro.dataflow.graph import DataflowGraph, Operator
from repro.hls.frontend import OperatorBuilder
from repro.hls.interp import make_body
from repro.core.project import Project

#: Popcount lookup table for one byte.
POPCOUNT8 = tuple(bin(i).count("1") for i in range(256))


@dataclass
class RosettaApp:
    """One benchmark application.

    Args:
        name: short name used in tables.
        description: one-line summary.
        project: the sample-scale PLD project (graph + sample inputs).
        paper_tokens_per_input: 32-bit words streamed per paper-scale
            input (drives the extrapolated per-input latency).
        sample_tokens_per_input: words per sample-scale input.
        reference: optional pure-Python golden model
          ``reference(inputs) -> outputs`` for output validation.
    """

    name: str
    description: str
    project: Project
    paper_tokens_per_input: int
    sample_tokens_per_input: int
    reference: Optional[Callable] = None

    @property
    def scale_factor(self) -> float:
        return max(1.0, self.paper_tokens_per_input
                   / max(1, self.sample_tokens_per_input))


def finish_app(name: str, description: str, graph: DataflowGraph,
               sample_inputs: Dict[str, List[int]],
               paper_tokens: int,
               reference: Optional[Callable] = None) -> RosettaApp:
    """Wrap a built graph into a :class:`RosettaApp`."""
    sample_tokens = sum(len(v) for v in sample_inputs.values())
    project = Project(
        name, graph, sample_inputs,
        scale_factor=max(1.0, paper_tokens / max(1, sample_tokens)),
        description=description)
    return RosettaApp(name, description, project, paper_tokens,
                      sample_tokens, reference)


def add_spec_operator(graph: DataflowGraph, spec,
                      page: Optional[int] = None,
                      sample_spec=None) -> Operator:
    """Add an IR-spec'd operator to a graph.

    ``spec`` is the paper-scale description used by the compile flows
    (scheduling/estimation are static, so full trip counts cost
    nothing); ``sample_spec``, when given, is the same kernel with
    reduced loop bounds, and its interpreter becomes the executable
    body.
    """
    runnable = sample_spec if sample_spec is not None else spec
    op = Operator(spec.name, make_body(runnable), spec.input_ports,
                  spec.output_ports, page=page, hls_spec=spec,
                  sample_spec=runnable)
    return graph.add(op)


# -- common IR fragments ------------------------------------------------------


def declare_popcount_table(b: OperatorBuilder, name: str = "popc") -> str:
    """Declare the byte-popcount table; returns the array name."""
    return b.array(name, 256, 8, signed=False, init=list(POPCOUNT8),
                   partition=True)


def emit_popcount32(b: OperatorBuilder, table: str, word):
    """Popcount of a 32-bit word via four byte lookups."""
    total = None
    for byte in range(4):
        chunk = b.cast(b.and_(b.lshr(word, 8 * byte), 0xFF), 8,
                       signed=False)
        part = b.load(table, chunk)
        total = part if total is None else b.add(total, part)
    return b.cast(total, 8, signed=False)


def fix_to_raw(value: float, frac_bits: int = 16) -> int:
    """Python float -> raw fixed-point word (for inputs/tests)."""
    return int(round(value * (1 << frac_bits))) & 0xFFFFFFFF


def raw_to_fix(raw: int, frac_bits: int = 16) -> float:
    """Raw fixed-point word -> Python float."""
    raw &= 0xFFFFFFFF
    if raw >> 31:
        raw -= 1 << 32
    return raw / (1 << frac_bits)


# -- registry -----------------------------------------------------------------


def all_apps() -> Dict[str, RosettaApp]:
    """Build every Rosetta app at sample scale."""
    from repro.rosetta import (
        bnn,
        digit_recognition,
        face_detection,
        optical_flow,
        rendering,
        spam_filter,
    )

    apps = [rendering.build(), digit_recognition.build(),
            spam_filter.build(), optical_flow.build(),
            face_detection.build(), bnn.build()]
    return {app.name: app for app in apps}


def get_app(name: str) -> RosettaApp:
    apps = all_apps()
    if name not in apps:
        raise FlowError(
            f"unknown Rosetta app {name!r}; have {sorted(apps)}")
    return apps[name]


def deterministic_rng(tag: str) -> random.Random:
    """Seeded RNG for reproducible synthetic workloads."""
    import zlib
    return random.Random(zlib.crc32(tag.encode()))
