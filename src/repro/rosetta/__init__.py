"""The Rosetta benchmark suite, decomposed into PLD operators (Sec. 7.2).

All six applications from Zhou et al. [74], re-implemented as streaming
dataflow graphs of IR operators following the paper's decompositions:

* :mod:`repro.rosetta.rendering` — 3D triangle rendering pipeline,
  decomposed by pipeline stage, large stages split by image region;
* :mod:`repro.rosetta.digit_recognition` — KNN hand-written-digit
  classifier as a systolic pipeline over training-set shards;
* :mod:`repro.rosetta.spam_filter` — logistic-regression SPAM scoring
  with data-parallel dot-product operators plus scatter/reduce;
* :mod:`repro.rosetta.optical_flow` — the Lucas-Kanade-style dataflow
  task graph of Fig. 2, one operator per task;
* :mod:`repro.rosetta.face_detection` — Viola-Jones-style cascade:
  strong filtering split by image region, weak filtering by filter set;
* :mod:`repro.rosetta.bnn` — binarised neural network with xnor-
  popcount convolutions, one operator per stage/operation.

Every app builds at a small *sample* scale for simulation plus carries
the paper-scale token counts used to extrapolate per-input times.
"""

from repro.rosetta.base import RosettaApp, all_apps, get_app

__all__ = ["RosettaApp", "all_apps", "get_app"]
