"""Arbitrary-precision HLS datatypes (``ap_int``, ``ap_uint``, ``ap_fixed``).

The paper's operators are written against the Xilinx ``ap_int``/``ap_fixed``
C++ libraries.  PLD ships its own memory-efficient, source-compatible
replacements so the same operator code runs on the PicoRV32 softcores whose
pages only carry 48-96 BRAM18s (Sec. 5.2).  This package is the Python
equivalent: value types with the same wrap/saturate and quantisation
semantics, usable both by the functional dataflow simulator and by the HLS
frontend (which reads bit-widths off these types to size datapaths), plus
footprint accounting that distinguishes the packed layout (this library)
from the word-aligned Xilinx layout.
"""

from repro.hlstypes.apint import ApInt, ap_int, ap_uint
from repro.hlstypes.apfixed import (
    ApFixed,
    Overflow,
    Quantization,
    ap_fixed,
    ap_ufixed,
)

__all__ = [
    "ApInt",
    "ApFixed",
    "Overflow",
    "Quantization",
    "ap_int",
    "ap_uint",
    "ap_fixed",
    "ap_ufixed",
]
