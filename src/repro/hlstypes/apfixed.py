"""Fixed-point HLS type (``ap_fixed``/``ap_ufixed``) semantics.

An :class:`ApFixed` holds ``width`` total bits of which ``int_bits`` sit
left of the binary point (including the sign bit when signed), matching
C++ ``ap_fixed<W, I>``.  Values are stored as scaled integers
(``raw * 2**-(width - int_bits)``), so arithmetic is exact until a result
is narrowed, at which point the configured quantisation (rounding) and
overflow modes apply — the defaults match Xilinx (truncate, wrap).

Like the Xilinx library, binary operators return results wide enough to
be exact (addition grows one integer bit; multiplication sums widths), so
kernels keep full precision through an expression and quantise on
assignment via :meth:`ApFixed.cast`.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Union

from repro.hlstypes.apint import ApInt, _mask, _wrap

_Number = Union[int, float, Fraction, "ApFixed", ApInt]


class Quantization(enum.Enum):
    """Rounding mode applied when low bits are dropped."""

    TRN = "truncate"        # toward minus infinity (Xilinx AP_TRN, default)
    RND = "round"           # to nearest, ties away from zero (AP_RND)


class Overflow(enum.Enum):
    """Overflow mode applied when high bits are dropped."""

    WRAP = "wrap"           # drop bits (AP_WRAP, default)
    SAT = "saturate"        # clamp to min/max (AP_SAT)


class ApFixed:
    """A fixed-point number with explicit width and integer bits.

    Args:
        value: initial value (int, float, Fraction, ApFixed or ApInt);
            quantised/overflowed into the format on construction.
        width: total bits (``W``).
        int_bits: bits left of the binary point (``I``); may exceed
            ``width`` or be negative, as in the C++ template.
        signed: two's-complement when True.
        quantization: rounding mode on construction/assignment.
        overflow: overflow mode on construction/assignment.
    """

    __slots__ = ("_raw", "_width", "_int_bits", "_signed", "_quant", "_ovf")

    def __init__(self, value: _Number = 0, width: int = 32, int_bits: int = 16,
                 signed: bool = True,
                 quantization: Quantization = Quantization.TRN,
                 overflow: Overflow = Overflow.WRAP):
        if width < 1:
            raise ValueError(f"ApFixed width must be >= 1, got {width}")
        self._width = width
        self._int_bits = int_bits
        self._signed = signed
        self._quant = quantization
        self._ovf = overflow
        self._raw = self._quantize(self._to_fraction(value))

    # -- construction helpers --------------------------------------------------

    @staticmethod
    def _to_fraction(value: _Number) -> Fraction:
        if isinstance(value, ApFixed):
            return value.as_fraction()
        if isinstance(value, ApInt):
            return Fraction(int(value))
        if isinstance(value, float):
            return Fraction(value)
        return Fraction(value)

    @property
    def frac_bits(self) -> int:
        """Bits right of the binary point (may be negative)."""
        return self._width - self._int_bits

    def _quantize(self, exact: Fraction) -> int:
        """Scale, round and overflow-handle an exact value into raw bits."""
        scaled = exact * (Fraction(2) ** self.frac_bits)
        if self._quant is Quantization.TRN:
            # Truncate toward minus infinity (floor), per AP_TRN.
            raw = scaled.numerator // scaled.denominator
        else:
            # Round half away from zero, per AP_RND behaviour on .5.
            sign = 1 if scaled >= 0 else -1
            raw = sign * int(abs(scaled) + Fraction(1, 2))
        lo, hi = self._raw_bounds()
        if raw < lo or raw > hi:
            if self._ovf is Overflow.SAT:
                raw = max(lo, min(hi, raw))
            else:
                raw = _wrap(raw, self._width, self._signed)
        return raw

    def _raw_bounds(self) -> tuple:
        if self._signed:
            return -(1 << (self._width - 1)), (1 << (self._width - 1)) - 1
        return 0, _mask(self._width)

    # -- introspection -----------------------------------------------------------

    @property
    def width(self) -> int:
        """Total bit width (``W``)."""
        return self._width

    @property
    def int_bits(self) -> int:
        """Integer bits including sign (``I``)."""
        return self._int_bits

    @property
    def signed(self) -> bool:
        """True for two's-complement formats."""
        return self._signed

    @property
    def quantization(self) -> Quantization:
        """Rounding mode used on assignment."""
        return self._quant

    @property
    def overflow(self) -> Overflow:
        """Overflow mode used on assignment."""
        return self._ovf

    @property
    def packed_bytes(self) -> int:
        """Footprint in PLD's memory-efficient softcore library."""
        return (self._width + 7) // 8

    @property
    def xilinx_bytes(self) -> int:
        """Footprint in the stock Xilinx library (word aligned)."""
        if self._width <= 32:
            return 4
        return 8 * ((self._width + 63) // 64)

    @property
    def epsilon(self) -> Fraction:
        """The value of one least-significant bit."""
        return Fraction(1, 2 ** self.frac_bits) if self.frac_bits >= 0 \
            else Fraction(2 ** -self.frac_bits)

    @property
    def min_value(self) -> Fraction:
        """Smallest representable value."""
        lo, _hi = self._raw_bounds()
        return Fraction(lo) * self.epsilon

    @property
    def max_value(self) -> Fraction:
        """Largest representable value."""
        _lo, hi = self._raw_bounds()
        return Fraction(hi) * self.epsilon

    def raw(self) -> int:
        """The raw bit pattern as an unsigned integer (stream payload)."""
        return self._raw & _mask(self._width)

    @classmethod
    def from_raw(cls, bits: int, width: int, int_bits: int,
                 signed: bool = True, **kwargs) -> "ApFixed":
        """Reinterpret raw bits (e.g. a stream word) as a fixed-point value."""
        out = cls(0, width, int_bits, signed, **kwargs)
        out._raw = _wrap(bits, width, signed)
        return out

    def as_fraction(self) -> Fraction:
        """Exact value as a :class:`fractions.Fraction`."""
        return Fraction(self._raw) * self.epsilon

    def __float__(self) -> float:
        return float(self.as_fraction())

    def __int__(self) -> int:
        frac = self.as_fraction()
        # C semantics: truncate toward zero.
        return int(frac) if frac >= 0 else -int(-frac)

    def __bool__(self) -> bool:
        return self._raw != 0

    def __repr__(self) -> str:
        kind = "ap_fixed" if self._signed else "ap_ufixed"
        return f"{kind}<{self._width},{self._int_bits}>({float(self)})"

    def __hash__(self) -> int:
        return hash(self.as_fraction())

    # -- format manipulation --------------------------------------------------------

    def cast(self, width: int, int_bits: int, signed: bool = None,
             quantization: Quantization = None,
             overflow: Overflow = None) -> "ApFixed":
        """Assign into another fixed-point format (quantise + overflow)."""
        return ApFixed(
            self.as_fraction(), width, int_bits,
            self._signed if signed is None else signed,
            self._quant if quantization is None else quantization,
            self._ovf if overflow is None else overflow,
        )

    def _result(self, exact: Fraction, width: int, int_bits: int,
                signed: bool) -> "ApFixed":
        out = ApFixed(0, width, int_bits, signed, self._quant, self._ovf)
        out._raw = out._quantize(exact)
        return out

    def _coerce(self, other: _Number) -> "ApFixed":
        if isinstance(other, ApFixed):
            return other
        if isinstance(other, ApInt):
            return ApFixed(int(other), other.width, other.width, other.signed)
        if isinstance(other, int):
            width = max(other.bit_length() + 1, 2)
            return ApFixed(other, width, width, True)
        if isinstance(other, (float, Fraction)):
            # Floats get a generous default format, exact via Fraction.
            out = ApFixed(0, self._width + 32, self._int_bits + 16,
                          True, self._quant, self._ovf)
            out._raw = out._quantize(Fraction(other))
            return out
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic -------------------------------------------------------------------

    def _add_like(self, other: _Number, sign: int) -> "ApFixed":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        frac_bits = max(self.frac_bits, rhs.frac_bits)
        int_bits = max(self._int_bits, rhs._int_bits) + 1
        exact = self.as_fraction() + sign * rhs.as_fraction()
        return self._result(exact, int_bits + frac_bits, int_bits,
                            self._signed or rhs._signed)

    def __add__(self, other: _Number) -> "ApFixed":
        return self._add_like(other, +1)

    def __radd__(self, other: _Number) -> "ApFixed":
        return self._add_like(other, +1)

    def __sub__(self, other: _Number) -> "ApFixed":
        return self._add_like(other, -1)

    def __rsub__(self, other: _Number) -> "ApFixed":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return rhs.__sub__(self)

    def __mul__(self, other: _Number) -> "ApFixed":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        width = self._width + rhs._width
        int_bits = self._int_bits + rhs._int_bits
        exact = self.as_fraction() * rhs.as_fraction()
        return self._result(exact, width, int_bits, self._signed or rhs._signed)

    def __rmul__(self, other: _Number) -> "ApFixed":
        return self.__mul__(other)

    def __truediv__(self, other: _Number) -> "ApFixed":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        if rhs._raw == 0:
            raise ZeroDivisionError("ApFixed division by zero")
        # Result keeps the dividend format widened by the divisor's
        # fractional precision — wide enough for the Rosetta kernels,
        # which then cast back explicitly.
        int_bits = self._int_bits + rhs.frac_bits + 1
        width = int_bits + max(self.frac_bits, rhs.frac_bits, 0) + 1
        exact = self.as_fraction() / rhs.as_fraction()
        return self._result(exact, width, int_bits, True)

    def __rtruediv__(self, other: _Number) -> "ApFixed":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return rhs.__truediv__(self)

    def __neg__(self) -> "ApFixed":
        return self._result(-self.as_fraction(), self._width + 1,
                            self._int_bits + 1, True)

    def __abs__(self) -> "ApFixed":
        return self._result(abs(self.as_fraction()), self._width + 1,
                            self._int_bits + 1, self._signed)

    def __lshift__(self, amount: int) -> "ApFixed":
        out = ApFixed(0, self._width, self._int_bits, self._signed,
                      self._quant, self._ovf)
        out._raw = _wrap(self._raw << int(amount), self._width, self._signed)
        return out

    def __rshift__(self, amount: int) -> "ApFixed":
        out = ApFixed(0, self._width, self._int_bits, self._signed,
                      self._quant, self._ovf)
        out._raw = self._raw >> int(amount)
        return out

    # -- comparisons ---------------------------------------------------------------------

    def _cmp(self, other: _Number):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return rhs.as_fraction()

    def __eq__(self, other: object) -> bool:
        rhs = self._cmp(other)  # type: ignore[arg-type]
        if rhs is NotImplemented:
            return NotImplemented
        return self.as_fraction() == rhs

    def __lt__(self, other: _Number) -> bool:
        rhs = self._cmp(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self.as_fraction() < rhs

    def __le__(self, other: _Number) -> bool:
        rhs = self._cmp(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self.as_fraction() <= rhs

    def __gt__(self, other: _Number) -> bool:
        rhs = self._cmp(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self.as_fraction() > rhs

    def __ge__(self, other: _Number) -> bool:
        rhs = self._cmp(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self.as_fraction() >= rhs


def ap_fixed(width: int, int_bits: int,
             quantization: Quantization = Quantization.TRN,
             overflow: Overflow = Overflow.WRAP):
    """Factory mirroring C++ ``ap_fixed<W, I>``."""

    def make(value: _Number = 0) -> ApFixed:
        return ApFixed(value, width, int_bits, True, quantization, overflow)

    make.width = width  # type: ignore[attr-defined]
    make.int_bits = int_bits  # type: ignore[attr-defined]
    make.signed = True  # type: ignore[attr-defined]
    make.__name__ = f"ap_fixed_{width}_{int_bits}"
    return make


def ap_ufixed(width: int, int_bits: int,
              quantization: Quantization = Quantization.TRN,
              overflow: Overflow = Overflow.WRAP):
    """Factory mirroring C++ ``ap_ufixed<W, I>``."""

    def make(value: _Number = 0) -> ApFixed:
        return ApFixed(value, width, int_bits, False, quantization, overflow)

    make.width = width  # type: ignore[attr-defined]
    make.int_bits = int_bits  # type: ignore[attr-defined]
    make.signed = False  # type: ignore[attr-defined]
    make.__name__ = f"ap_ufixed_{width}_{int_bits}"
    return make
