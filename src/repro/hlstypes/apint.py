"""Arbitrary-precision integers with HLS (``ap_int``/``ap_uint``) semantics.

An :class:`ApInt` is an immutable integer with an explicit bit-width and
signedness.  Arithmetic wraps modulo ``2**width`` exactly as C++ ``ap_int``
does when the result is assigned back into a variable of the same width.
Binary operators follow the HLS promotion rules closely enough for the
Rosetta kernels: the result width is the width needed to hold any exact
result (e.g. ``W+1`` for addition, ``W1+W2`` for multiplication), so no
precision is lost until the program narrows explicitly.

The module also records the two storage footprints the paper contrasts
(Sec. 5.2): the packed footprint used by PLD's memory-efficient library
(``ceil(width / 8)`` bytes) and the word-aligned footprint of the stock
Xilinx library (32-bit multiples, 64-bit for wide values).
"""

from __future__ import annotations

from typing import Tuple, Union

_IntLike = Union[int, "ApInt"]


def _mask(width: int) -> int:
    return (1 << width) - 1


def _wrap(value: int, width: int, signed: bool) -> int:
    """Reduce ``value`` into the representable range by dropping high bits."""
    value &= _mask(width)
    if signed and value >> (width - 1):
        value -= 1 << width
    return value


class ApInt:
    """A fixed-width two's-complement integer.

    Instances are immutable; every operation returns a new :class:`ApInt`.

    Args:
        value: initial value; wrapped into range (assignment semantics).
        width: bit width, ``>= 1``.
        signed: two's-complement when True, unsigned otherwise.
    """

    __slots__ = ("_value", "_width", "_signed")

    def __init__(self, value: _IntLike = 0, width: int = 32,
                 signed: bool = True):
        if width < 1:
            raise ValueError(f"ApInt width must be >= 1, got {width}")
        if isinstance(value, ApInt):
            value = value._value
        self._width = width
        self._signed = signed
        self._value = _wrap(int(value), width, signed)

    # -- introspection ----------------------------------------------------

    @property
    def width(self) -> int:
        """Bit width of the type."""
        return self._width

    @property
    def signed(self) -> bool:
        """True when the type is two's-complement signed."""
        return self._signed

    @property
    def value(self) -> int:
        """The held value as a plain Python int."""
        return self._value

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        return -(1 << (self._width - 1)) if self._signed else 0

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        if self._signed:
            return (1 << (self._width - 1)) - 1
        return _mask(self._width)

    @property
    def packed_bytes(self) -> int:
        """Storage footprint of PLD's memory-efficient library."""
        return (self._width + 7) // 8

    @property
    def xilinx_bytes(self) -> int:
        """Storage footprint of the stock Xilinx library (word aligned)."""
        if self._width <= 32:
            return 4
        words = (self._width + 63) // 64
        return 8 * words

    def raw(self) -> int:
        """The underlying bit pattern as an unsigned int (for streams)."""
        return self._value & _mask(self._width)

    @classmethod
    def from_raw(cls, bits: int, width: int, signed: bool = True) -> "ApInt":
        """Reinterpret a raw bit pattern (e.g. read from a stream)."""
        return cls(_wrap(bits, width, signed), width, signed)

    # -- conversions -------------------------------------------------------

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return self._value != 0

    def __repr__(self) -> str:
        kind = "ap_int" if self._signed else "ap_uint"
        return f"{kind}<{self._width}>({self._value})"

    def __hash__(self) -> int:
        return hash((self._value, self._width, self._signed))

    # -- width manipulation -------------------------------------------------

    def cast(self, width: int, signed: bool = None) -> "ApInt":
        """Assign into a (possibly narrower) type, wrapping as C++ does."""
        if signed is None:
            signed = self._signed
        return ApInt(self._value, width, signed)

    def __getitem__(self, key) -> "ApInt":
        """Bit (``x[3]``) or slice (``x[7:0]``, MSB:LSB inclusive) select."""
        bits = self.raw()
        if isinstance(key, slice):
            if key.step is not None:
                raise ValueError("ApInt slices do not support a step")
            hi, lo = key.start, key.stop
            if hi is None or lo is None:
                raise ValueError("ApInt slices need explicit msb:lsb bounds")
            if hi < lo:
                raise ValueError(f"ApInt slice msb ({hi}) < lsb ({lo})")
            if hi >= self._width or lo < 0:
                raise IndexError(
                    f"slice [{hi}:{lo}] out of range for width {self._width}")
            width = hi - lo + 1
            return ApInt((bits >> lo) & _mask(width), width, signed=False)
        index = int(key)
        if index < 0 or index >= self._width:
            raise IndexError(f"bit {index} out of range for width {self._width}")
        return ApInt((bits >> index) & 1, 1, signed=False)

    def concat(self, other: "ApInt") -> "ApInt":
        """Bit concatenation: ``self`` becomes the high bits."""
        width = self._width + other._width
        bits = (self.raw() << other._width) | other.raw()
        return ApInt(bits, width, signed=False)

    # -- arithmetic helpers --------------------------------------------------

    def _coerce(self, other: _IntLike) -> Tuple[int, int, bool]:
        """Return (value, width, signed) for the right-hand operand."""
        if isinstance(other, ApInt):
            return other._value, other._width, other._signed
        if isinstance(other, int):
            width = max(other.bit_length(), 1) + (1 if other < 0 else 1)
            return other, width, other < 0 or self._signed
        return NotImplemented  # type: ignore[return-value]

    def _binary(self, other: _IntLike, op, extra_bits: int,
                mul: bool = False) -> "ApInt":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        ovalue, owidth, osigned = coerced
        signed = self._signed or osigned
        if mul:
            width = self._width + owidth
        else:
            width = max(self._width, owidth) + extra_bits
        return ApInt(op(self._value, ovalue), width, signed)

    def __add__(self, other: _IntLike) -> "ApInt":
        return self._binary(other, lambda a, b: a + b, 1)

    def __radd__(self, other: int) -> "ApInt":
        return self.__add__(other)

    def __sub__(self, other: _IntLike) -> "ApInt":
        return self._binary(other, lambda a, b: a - b, 1)

    def __rsub__(self, other: int) -> "ApInt":
        return ApInt(other, max(self._width, int(other).bit_length() + 1),
                     self._signed).__sub__(self)

    def __mul__(self, other: _IntLike) -> "ApInt":
        return self._binary(other, lambda a, b: a * b, 0, mul=True)

    def __rmul__(self, other: int) -> "ApInt":
        return self.__mul__(other)

    def __floordiv__(self, other: _IntLike) -> "ApInt":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        ovalue, _width, osigned = coerced
        if ovalue == 0:
            raise ZeroDivisionError("ApInt division by zero")
        # HLS division truncates toward zero (C semantics), unlike //.
        quotient = abs(self._value) // abs(ovalue)
        if (self._value < 0) != (ovalue < 0):
            quotient = -quotient
        return ApInt(quotient, self._width + 1, self._signed or osigned)

    def __mod__(self, other: _IntLike) -> "ApInt":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        ovalue, owidth, osigned = coerced
        if ovalue == 0:
            raise ZeroDivisionError("ApInt modulo by zero")
        # C semantics: remainder has the sign of the dividend.
        remainder = abs(self._value) % abs(ovalue)
        if self._value < 0:
            remainder = -remainder
        return ApInt(remainder, min(self._width, owidth) + 1,
                     self._signed or osigned)

    def __neg__(self) -> "ApInt":
        return ApInt(-self._value, self._width + 1, True)

    def __abs__(self) -> "ApInt":
        return ApInt(abs(self._value), self._width + 1, self._signed)

    def __invert__(self) -> "ApInt":
        return ApInt(~self._value, self._width, self._signed)

    def _bitwise(self, other: _IntLike, op) -> "ApInt":
        coerced = self._coerce(other)
        if coerced is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        ovalue, owidth, osigned = coerced
        width = max(self._width, owidth)
        return ApInt(op(self._value, ovalue), width, self._signed or osigned)

    def __and__(self, other: _IntLike) -> "ApInt":
        return self._bitwise(other, lambda a, b: a & b)

    def __rand__(self, other: int) -> "ApInt":
        return self.__and__(other)

    def __or__(self, other: _IntLike) -> "ApInt":
        return self._bitwise(other, lambda a, b: a | b)

    def __ror__(self, other: int) -> "ApInt":
        return self.__or__(other)

    def __xor__(self, other: _IntLike) -> "ApInt":
        return self._bitwise(other, lambda a, b: a ^ b)

    def __rxor__(self, other: int) -> "ApInt":
        return self.__xor__(other)

    def __lshift__(self, amount: int) -> "ApInt":
        # Width stays fixed (assignment semantics), bits shifted out drop.
        return ApInt(self._value << int(amount), self._width, self._signed)

    def __rshift__(self, amount: int) -> "ApInt":
        # Arithmetic shift for signed, logical for unsigned.
        return ApInt(self._value >> int(amount), self._width, self._signed)

    # -- comparisons ----------------------------------------------------------

    def _cmp_value(self, other: _IntLike) -> int:
        if isinstance(other, ApInt):
            return other._value
        if isinstance(other, int):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __eq__(self, other: object) -> bool:
        value = self._cmp_value(other)  # type: ignore[arg-type]
        if value is NotImplemented:
            return NotImplemented
        return self._value == value

    def __lt__(self, other: _IntLike) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self._value < value

    def __le__(self, other: _IntLike) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self._value <= value

    def __gt__(self, other: _IntLike) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self._value > value

    def __ge__(self, other: _IntLike) -> bool:
        value = self._cmp_value(other)
        if value is NotImplemented:
            return NotImplemented
        return self._value >= value


def ap_int(width: int):
    """Factory mirroring C++ ``ap_int<W>``: returns a constructor."""

    def make(value: _IntLike = 0) -> ApInt:
        return ApInt(value, width, signed=True)

    make.width = width  # type: ignore[attr-defined]
    make.signed = True  # type: ignore[attr-defined]
    make.__name__ = f"ap_int_{width}"
    return make


def ap_uint(width: int):
    """Factory mirroring C++ ``ap_uint<W>``: returns a constructor."""

    def make(value: _IntLike = 0) -> ApInt:
        return ApInt(value, width, signed=False)

    make.width = width  # type: ignore[attr-defined]
    make.signed = False  # type: ignore[attr-defined]
    make.__name__ = f"ap_uint_{width}"
    return make
