"""Simulation-engine selection: the ``sim_engine`` knob.

Two engines exist for the three hottest simulation kernels (the
deflection-routed NoC, the annealing placer and the softcore ISS):

* ``scalar`` — the original per-packet / per-move / per-instruction
  interpreters.  These stay the golden reference.
* ``vector`` — numpy-backed twins (batched NoC router, bounding-box
  delta-HPWL annealer, basic-block-cached ISS) that produce
  **bit-identical** deterministic outputs (cycles, delivered,
  deflections, placements, HPWL, architectural state) while running
  substantially faster at scale.  ``tests/test_perf_equivalence.py``
  and ``tests/test_vector_engines.py`` pin the equivalence.

Because the engines are bit-identical, the knob is *not* part of any
build content key: artefacts compiled under either engine share one
cache entry, and a vector daemon can serve scalar clients (and vice
versa) from the same store.

Selection is layered:

1. an explicit ``engine=`` argument on the kernel entry points
   (``place``, ``NetworkSimulator``, ``PicoRV32``, ``implement_design``)
   always wins — this is how flows ship the knob into
   :class:`~repro.core.parallel.ParallelBuildEngine` worker processes,
   where ambient state would not survive the pickle boundary;
2. otherwise a thread-local override set by :func:`engine_scope` /
   :func:`set_thread_engine` — the compile service runs concurrent
   requests on executor threads, so per-request engines must not race;
3. otherwise the process-wide default set by
   :func:`set_default_engine` (the CLI sets this from ``--sim-engine``);
4. otherwise ``scalar``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

#: The recognised engine names, in documentation order.
ENGINES = ("scalar", "vector")

SCALAR = "scalar"
VECTOR = "vector"

_process_default = SCALAR
_thread_state = threading.local()


def validate_engine(name: str) -> str:
    """Return ``name`` if it is a known engine, else raise ValueError."""
    if name not in ENGINES:
        raise ValueError(
            f"unknown sim engine {name!r}; expected one of {ENGINES}")
    return name


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the effective engine for one kernel instantiation.

    ``engine`` (when given) > thread-local override > process default.
    """
    if engine is not None:
        return validate_engine(engine)
    local = getattr(_thread_state, "engine", None)
    if local is not None:
        return local
    return _process_default


def set_default_engine(name: str) -> str:
    """Set the process-wide default; returns the previous default."""
    global _process_default
    previous = _process_default
    _process_default = validate_engine(name)
    return previous


def set_thread_engine(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) this thread's engine override."""
    _thread_state.engine = validate_engine(name) if name is not None \
        else None


@contextmanager
def engine_scope(name: Optional[str]) -> Iterator[str]:
    """Thread-local engine override for a ``with`` block.

    ``None`` is a no-op scope (resolves to whatever was in effect),
    so call sites can pass an optional knob straight through.
    """
    if name is None:
        yield resolve_engine()
        return
    previous = getattr(_thread_state, "engine", None)
    _thread_state.engine = validate_engine(name)
    try:
        yield name
    finally:
        _thread_state.engine = previous
