"""The ``pld serve`` daemon: a TCP frontend over :class:`CompileService`.

One asyncio server speaks the remote-store wire format (length-prefixed
JSON header + opaque payload, :mod:`repro.store.remote.framing`) and
maps each request header onto the service:

========  ===================================================
op        effect
========  ===================================================
ping      liveness probe (also reports pid and uptime)
submit    enqueue a compile/edit; returns a ticket id
status    queue state and position for a ticket
result    block until a ticket finishes; manifest as payload
stats     service-wide dedup / scheduler / store counters
shutdown  graceful stop: drain, close the service, exit
========  ===================================================

Errors travel as ``{"ok": false, "error": ..., "kind": ...}`` so the
client can re-raise a typed :class:`~repro.errors.ServiceError`; a
``DeadlineExceeded`` inside a build maps to ``kind="deadline"`` with
the completed/pending step counts, mirroring the CLI's exit-2 report.

The blocking calls (``service.result``) run in the loop's default
executor, so one tenant waiting on a long build never stalls another
tenant's submit.  State (store, session journals, leases) lives under
``--state DIR``; a daemon killed mid-build and restarted over the same
directory finds the interrupted session journals and resumes them on
the next submit — the bit-identical-restart contract the CI smoke job
enforces.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import DeadlineExceeded, PLDError, ServiceError
from repro.store.remote.framing import (recv_frame_async,
                                        send_frame_async)
from repro.service.core import (CompileRequest, CompileService,
                                RequestOutcome, ServiceConfig)

#: Fields a submit header may carry, with coercions applied server-side
#: (everything arrives as JSON scalars).
_SUBMIT_FIELDS = {
    "app": str, "flow": str, "effort": float, "tenant": str,
    "session": str, "priority": str, "deadline": float, "cost": int,
    "resume": bool, "seed": int, "sim_engine": str,
    "edit_operator": str,
    "edit_tag": str, "crash_at_step": int, "crash_point": str,
}


def request_from_header(header: Dict[str, Any]) -> CompileRequest:
    """Build a :class:`CompileRequest` from a submit frame header."""
    app = header.get("app")
    if not app or not isinstance(app, str):
        raise ServiceError("submit needs an 'app' field",
                           kind="bad-request")
    kwargs: Dict[str, Any] = {}
    for name, coerce in _SUBMIT_FIELDS.items():
        if name == "app":
            continue
        value = header.get(name)
        if value is None:
            continue
        try:
            kwargs[name] = coerce(value)
        except (TypeError, ValueError):
            raise ServiceError(f"bad {name!r} value {value!r}",
                               kind="bad-request")
    return CompileRequest(app=app, **kwargs)


def outcome_to_wire(outcome: RequestOutcome
                    ) -> Tuple[Dict[str, Any], bytes]:
    """Flatten an outcome into a JSON-safe header + manifest payload."""
    build = outcome.build
    header: Dict[str, Any] = {
        "ok": True,
        "ticket": outcome.ticket,
        "kind": outcome.kind,
        "tenant": outcome.tenant,
        "session": outcome.session,
        "dedup": dict(outcome.dedup),
        "resumed": len(outcome.resumed),
        "wall_seconds": outcome.wall_seconds,
    }
    payload = b""
    if build is not None:
        header["describe"] = build.describe()
        header["pages_rebuilt"] = len(build.recompiled_pages)
        payload = json.dumps(build.manifest(), indent=2,
                             sort_keys=True).encode()
    if outcome.edit is not None:
        header["edit"] = {
            "operator": outcome.edit.operator,
            "dirty_steps": len(outcome.edit.dirty_steps),
            "pages_reloaded": list(outcome.edit.pages_reloaded),
            "speedup": outcome.edit.speedup,
        }
    return header, payload


def error_to_wire(exc: BaseException) -> Dict[str, Any]:
    """One wire shape for every failure the service can raise."""
    header = {
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "kind": getattr(exc, "kind", "") or type(exc).__name__,
    }
    if isinstance(exc, DeadlineExceeded):
        header["kind"] = "deadline"
        header["completed"] = len(exc.completed)
        header["pending"] = len(exc.pending)
        header["hint"] = ("resubmit the same session to resume from "
                          "its journal")
    return header


class ServeDaemon:
    """The asyncio server; one instance per ``pld serve`` process."""

    def __init__(self, service: CompileService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()
        self._started = time.monotonic()
        self.connections = 0
        self.requests = 0

    # -- per-op handlers -----------------------------------------------------

    async def _op_ping(self, header, payload):
        return {"ok": True, "pid": os.getpid(),
                "uptime": time.monotonic() - self._started}, b""

    async def _op_submit(self, header, payload):
        request = request_from_header(header)
        ticket = self.service.submit(request)
        position = self.service.status(ticket)["position"]
        return {"ok": True, "ticket": ticket,
                "position": position}, b""

    async def _op_status(self, header, payload):
        status = self.service.status(str(header.get("ticket", "")))
        status["ok"] = True
        return status, b""

    async def _op_result(self, header, payload):
        ticket = str(header.get("ticket", ""))
        timeout = header.get("timeout")
        loop = asyncio.get_running_loop()
        outcome = await loop.run_in_executor(
            None, lambda: self.service.result(
                ticket, timeout=float(timeout)
                if timeout is not None else None))
        return outcome_to_wire(outcome)

    async def _op_stats(self, header, payload):
        stats = self.service.stats()
        stats["ok"] = True
        stats["pid"] = os.getpid()
        stats["uptime"] = time.monotonic() - self._started
        return stats, b""

    async def _op_shutdown(self, header, payload):
        self._stopping.set()
        return {"ok": True, "stopping": True}, b""

    # -- connection loop -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    header, payload = await recv_frame_async(reader)
                except PLDError:
                    break                 # client went away / bad frame
                except asyncio.CancelledError:
                    break                 # server closing this connection
                self.requests += 1
                op = header.get("op", "")
                handler = getattr(self, f"_op_{op}", None)
                if handler is None:
                    response: Dict[str, Any] = {
                        "ok": False,
                        "error": f"unknown op {op!r}",
                        "kind": "bad-request"}
                    body = b""
                else:
                    try:
                        response, body = await handler(header, payload)
                    except PLDError as exc:
                        response, body = error_to_wire(exc), b""
                try:
                    await send_frame_async(writer, response, body)
                except PLDError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):
                pass

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_until_stopped(self) -> None:
        await self._stopping.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def request_stop(self) -> None:
        self._stopping.set()


def serve(cache_dir: str, host: str = "127.0.0.1", port: int = 0,
          workers: Optional[int] = None, slots: int = 4,
          quotas: Optional[Dict[str, int]] = None,
          default_quota: Optional[int] = None,
          trace: Optional[str] = None,
          notify=print, ready=None) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT/shutdown.

    Args:
        cache_dir: the state directory — shared artifact store plus
            one journal + lease per leased session under ``sessions/``.
        ready: optional callback invoked with ``(host, port)`` once the
            listener is bound (tests use it instead of scraping stdout).

    Returns the process exit code (0 on a clean stop).
    """
    tracer = None
    if trace:
        from repro.trace import Tracer
        tracer = Tracer()
    service = CompileService(ServiceConfig(
        cache_dir=cache_dir, shared=True, workers=workers,
        slots=slots, quotas=dict(quotas or {}),
        default_quota=default_quota, tracer=tracer))
    interrupted = service.interrupted_sessions()
    if interrupted and notify is not None:
        notify(f"found {len(interrupted)} interrupted session(s): "
               f"{', '.join(interrupted)} — they resume on next submit")
    daemon = ServeDaemon(service, host=host, port=port)

    async def _main() -> None:
        bound_host, bound_port = await daemon.start()
        if notify is not None:
            notify(f"pld serve listening on {bound_host}:{bound_port} "
                   f"(state: {cache_dir}, pid {os.getpid()})")
        if ready is not None:
            ready(bound_host, bound_port)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, daemon.request_stop)
            except (NotImplementedError, RuntimeError):
                pass                       # non-main thread / platform
        await daemon.serve_until_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        if tracer is not None and trace:
            tracer.write_chrome_trace(trace)
            if notify is not None:
                notify(f"wrote server trace {trace} "
                       f"({len(tracer)} events)")
    if notify is not None:
        notify(f"pld serve stopped after {daemon.requests} request(s) "
               f"on {daemon.connections} connection(s)")
    return 0


if __name__ == "__main__":               # pragma: no cover
    sys.exit(serve(sys.argv[1] if len(sys.argv) > 1 else ".pld-state"))
