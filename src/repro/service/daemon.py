"""The ``pld serve`` daemon: a TCP frontend over :class:`CompileService`.

One asyncio server speaks the remote-store wire format (length-prefixed
JSON header + opaque payload, :mod:`repro.store.remote.framing`) and
maps each request header onto the service:

========  ===================================================
op        effect
========  ===================================================
ping      liveness probe (also reports pid and uptime)
submit    enqueue a compile/edit; returns a ticket id
status    queue state and position for a ticket
result    block until a ticket finishes; manifest as payload
stats     service-wide dedup / scheduler / store counters
health    liveness *and* readiness (draining, brownout, depths)
drain     zero-downtime stop: reject new work, finish running
shutdown  graceful stop: drain, close the service, exit
========  ===================================================

Errors travel as ``{"ok": false, "error": ..., "kind": ...}`` so the
client can re-raise a typed :class:`~repro.errors.ServiceError`; a
``DeadlineExceeded`` inside a build maps to ``kind="deadline"`` with
the completed/pending step counts, mirroring the CLI's exit-2 report.
A hostile or malformed header is *never* allowed to kill the
connection: every handler runs under a guard that maps non-PLD
``ValueError``/``TypeError``/``KeyError`` to ``kind="bad-request"``
and anything else to ``kind="internal"``, and the loop answers with an
error frame and reads the next request.

The event loop does no service work itself.  ``submit``/``status``/
``stats`` run in the default executor (they take service locks and
touch lease/journal files on disk); ``result`` parks **no** thread at
all — each waiter registers a :meth:`CompileService.add_done_callback`
that fires an ``asyncio.Event`` via ``call_soon_threadsafe``, so 64+
concurrent waiters cost 64 events, not 64 of the executor's ~32
threads.

With ``--store`` the daemon fronts a shard fleet: the service's
:class:`~repro.store.remote.ShardedStoreClient` is shared with build
workers, while the daemon's own traffic — periodic write-behind
reconciles, the final reconcile-on-close, per-shard health probes for
``stats`` — rides an :class:`~repro.store.remote.AsyncShardedStoreClient`
facade natively on the loop.  Tenant tokens (``--token T=SECRET``)
gate ``submit`` with ``kind="auth"`` errors so per-tenant quotas
cannot be bypassed by lying about the tenant field.

State (store, session journals, leases) lives under ``--state DIR``; a
daemon killed mid-build and restarted over the same directory finds
the interrupted session journals and resumes them on the next submit.
Over a shared fleet the same contract extends across machines: each
leased session's lease + journal is published to the store under a
fenced epoch, so a *different* daemon can adopt and resume it — the
bit-identical-restart contract the CI smoke jobs enforce.
"""

from __future__ import annotations

import asyncio
import functools
import hmac
import json
import os
import signal
import sys
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import (DeadlineExceeded, PLDError, ServiceError,
                          StoreError)
from repro.store.remote.aio import AsyncShardedStoreClient
from repro.store.remote.framing import (recv_frame_async,
                                        send_frame_async)
from repro.service.core import (CompileRequest, CompileService,
                                RequestOutcome, ServiceConfig)

#: Fields a submit header may carry, with coercions applied server-side
#: (everything arrives as JSON scalars).
_SUBMIT_FIELDS = {
    "app": str, "flow": str, "effort": float, "tenant": str,
    "session": str, "priority": str, "deadline": float, "cost": int,
    "resume": bool, "seed": int, "sim_engine": str,
    "edit_operator": str,
    "edit_tag": str, "crash_at_step": int, "crash_point": str,
}

#: Seconds between background write-behind reconcile passes when the
#: daemon fronts a shard fleet.
DEFAULT_RECONCILE_INTERVAL = 2.0

#: How often a parked ``result`` waiter polls its connection for EOF,
#: so a vanished client's done-callback unregisters instead of
#: accumulating (completion itself still wakes the waiter instantly).
DISCONNECT_POLL_SECONDS = 0.1


class _ClientDisconnected(Exception):
    """Internal: a ``result`` waiter's client hung up mid-wait; the
    connection loop tears the connection down without answering."""


def request_from_header(header: Dict[str, Any]) -> CompileRequest:
    """Build a :class:`CompileRequest` from a submit frame header."""
    app = header.get("app")
    if not app or not isinstance(app, str):
        raise ServiceError("submit needs an 'app' field",
                           kind="bad-request")
    kwargs: Dict[str, Any] = {}
    for name, coerce in _SUBMIT_FIELDS.items():
        if name == "app":
            continue
        value = header.get(name)
        if value is None:
            continue
        try:
            kwargs[name] = coerce(value)
        except (TypeError, ValueError):
            raise ServiceError(f"bad {name!r} value {value!r}",
                               kind="bad-request")
    return CompileRequest(app=app, **kwargs)


def outcome_to_wire(outcome: RequestOutcome
                    ) -> Tuple[Dict[str, Any], bytes]:
    """Flatten an outcome into a JSON-safe header + manifest payload."""
    build = outcome.build
    header: Dict[str, Any] = {
        "ok": True,
        "ticket": outcome.ticket,
        "kind": outcome.kind,
        "tenant": outcome.tenant,
        "session": outcome.session,
        "dedup": dict(outcome.dedup),
        "resumed": len(outcome.resumed),
        "wall_seconds": outcome.wall_seconds,
    }
    payload = b""
    if build is not None:
        header["describe"] = build.describe()
        header["pages_rebuilt"] = len(build.recompiled_pages)
        payload = json.dumps(build.manifest(), indent=2,
                             sort_keys=True).encode()
    if outcome.edit is not None:
        header["edit"] = {
            "operator": outcome.edit.operator,
            "dirty_steps": len(outcome.edit.dirty_steps),
            "pages_reloaded": list(outcome.edit.pages_reloaded),
            "speedup": outcome.edit.speedup,
        }
    return header, payload


def error_to_wire(exc: BaseException) -> Dict[str, Any]:
    """One wire shape for every failure the service can raise."""
    header = {
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "kind": getattr(exc, "kind", "") or type(exc).__name__,
    }
    if isinstance(exc, DeadlineExceeded):
        header["kind"] = "deadline"
        header["completed"] = len(exc.completed)
        header["pending"] = len(exc.pending)
        header["hint"] = ("resubmit the same session to resume from "
                          "its journal")
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        header["retry_after"] = retry_after
    peers = getattr(exc, "peers", ())
    if peers:
        header["peers"] = list(peers)
    reason = getattr(exc, "reason", "")
    if reason:
        header["reason"] = reason
    return header


class ServeDaemon:
    """The asyncio server; one instance per ``pld serve`` process."""

    def __init__(self, service: CompileService,
                 host: str = "127.0.0.1", port: int = 0,
                 tokens: Optional[Dict[str, str]] = None,
                 reconcile_interval: float = DEFAULT_RECONCILE_INTERVAL,
                 max_connections: Optional[int] = None,
                 frame_timeout: Optional[float] = None):
        self.service = service
        self.host = host
        self.port = port
        #: Per-tenant shared secrets; empty means auth is off.
        self.tokens = dict(tokens or {})
        self.reconcile_interval = reconcile_interval
        #: Concurrent-connection cap; the over-limit connection gets
        #: one ``kind="overloaded"`` error frame and is closed.
        self.max_connections = max_connections
        #: Per-frame read/write budget (seconds) once a frame starts —
        #: the slow-loris guard.  Idle keep-alive waits stay unbounded.
        self.frame_timeout = frame_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()
        self._started = time.monotonic()
        self._store_async: Optional[AsyncShardedStoreClient] = None
        self._reconcile_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None
        self.connections = 0
        self.active_connections = 0
        self.rejected_connections = 0
        self.requests = 0
        self.reconciled = 0
        #: Clients currently parked in ``result`` (and the high-water
        #: mark) — each costs one asyncio.Event, never a thread.
        self.waiters = 0
        self.peak_waiters = 0

    # -- helpers -------------------------------------------------------------

    async def _call(self, fn, *args, **kwargs):
        """Run a blocking service call off-loop (default executor)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(fn, *args, **kwargs))

    def _check_auth(self, header: Dict[str, Any]) -> None:
        """Shared-secret tenant auth; no tokens configured = open."""
        if not self.tokens:
            return
        tenant = str(header.get("tenant") or "default")
        expected = self.tokens.get(tenant)
        if expected is None:
            raise ServiceError(
                f"tenant {tenant!r} is not provisioned on this daemon",
                kind="auth")
        token = header.get("token")
        if not isinstance(token, str) or \
                not hmac.compare_digest(expected, token):
            raise ServiceError(
                f"bad or missing token for tenant {tenant!r}",
                kind="auth")

    # -- per-op handlers -----------------------------------------------------

    async def _op_ping(self, header, payload, reader=None):
        return {"ok": True, "pid": os.getpid(),
                "uptime": time.monotonic() - self._started}, b""

    async def _op_health(self, header, payload, reader=None):
        """Liveness vs. readiness: a live daemon answers; a *ready*
        one is also accepting new submits (not draining/stopping).
        Load balancers route on ``ready``, watchdogs on ``live``."""
        sched = self.service.scheduler.stats()
        draining = self.service.draining
        return {"ok": True, "live": True,
                "ready": not draining and not self._stopping.is_set(),
                "draining": draining,
                "brownout": self.service.admission.brownout,
                "queued": sched["queued"],
                "running": sched["running"],
                "connections": self.active_connections,
                "pid": os.getpid()}, b""

    async def _op_submit(self, header, payload, reader=None):
        if self.service.draining:
            # Fast path: no auth, no executor hop — a draining daemon
            # answers every submit with its peer hints immediately.
            return {"ok": False, "kind": "draining",
                    "error": "daemon is draining; resubmit to a peer",
                    "retry_after": 1.0,
                    "peers": list(self.service.peers)}, b""
        self._check_auth(header)
        request = request_from_header(header)
        # submit takes service locks and writes lease/journal files —
        # never on the event loop.
        ticket = await self._call(self.service.submit, request)
        status = await self._call(self.service.status, ticket)
        return {"ok": True, "ticket": ticket,
                "position": status["position"]}, b""

    async def _op_status(self, header, payload, reader=None):
        status = await self._call(self.service.status,
                                  str(header.get("ticket", "")))
        status["ok"] = True
        return status, b""

    async def _op_result(self, header, payload, reader=None):
        ticket = str(header.get("ticket", ""))
        raw_timeout = header.get("timeout")
        try:
            timeout = float(raw_timeout) \
                if raw_timeout is not None else None
        except (TypeError, ValueError):
            raise ServiceError(f"bad 'timeout' value {raw_timeout!r}",
                               kind="bad-request")
        loop = asyncio.get_running_loop()
        event = asyncio.Event()

        def _wake(_ticket) -> None:
            loop.call_soon_threadsafe(event.set)

        # Validates the ticket (kind="unknown-ticket") and fires
        # immediately when it is already done.
        self.service.add_done_callback(ticket, _wake)
        self.waiters += 1
        self.peak_waiters = max(self.peak_waiters, self.waiters)
        deadline = None if timeout is None else loop.time() + timeout
        try:
            # Completion wakes the event instantly; the short wait_for
            # slices only bound how long a *disconnect* goes unnoticed,
            # so a client that hung up unregisters its callback instead
            # of accumulating one per abandoned wait.
            while not event.is_set():
                if reader is not None and reader.at_eof():
                    self.service.remove_done_callback(ticket, _wake)
                    raise _ClientDisconnected()
                if deadline is not None and loop.time() >= deadline:
                    self.service.remove_done_callback(ticket, _wake)
                    status = await self._call(self.service.status,
                                              ticket)
                    raise ServiceError(
                        f"request {ticket} still {status['state']} "
                        f"after {timeout:g}s", kind="timeout")
                step = DISCONNECT_POLL_SECONDS
                if deadline is not None:
                    step = min(step, max(0.01, deadline - loop.time()))
                try:
                    await asyncio.wait_for(event.wait(), step)
                except asyncio.TimeoutError:
                    pass
        finally:
            self.waiters -= 1
        # The ticket is done: this re-raise/fetch returns immediately.
        outcome = await self._call(self.service.result, ticket,
                                   timeout=0)
        return await self._call(outcome_to_wire, outcome)

    async def _op_stats(self, header, payload, reader=None):
        stats = await self._call(self.service.stats)
        stats["ok"] = True
        stats["pid"] = os.getpid()
        stats["uptime"] = time.monotonic() - self._started
        stats["waiters"] = {"active": self.waiters,
                            "peak": self.peak_waiters}
        stats["connections"] = {
            "active": self.active_connections,
            "total": self.connections,
            "rejected": self.rejected_connections,
            "max": self.max_connections}
        if self._store_async is not None:
            health = await self._store_async.ping_all()
            stats["shard_health"] = health
            stats["shards_up"] = sum(1 for up in health.values() if up)
        return stats, b""

    async def _op_drain(self, header, payload, reader=None):
        """Zero-downtime stop: flip to draining (submits answer
        ``kind="draining"`` with peer hints), let queued + running
        builds finish, republish session leases on close, exit."""
        self.request_drain()
        return {"ok": True, "draining": True,
                "peers": list(self.service.peers)}, b""

    async def _op_shutdown(self, header, payload, reader=None):
        self._stopping.set()
        return {"ok": True, "stopping": True}, b""

    # -- connection loop -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        if self.max_connections is not None \
                and self.active_connections >= self.max_connections:
            # One error frame, then hang up: the cap protects the
            # daemon's memory and loop, not the client's feelings.
            self.rejected_connections += 1
            try:
                await send_frame_async(
                    writer,
                    {"ok": False, "kind": "overloaded",
                     "error": f"connection limit "
                              f"({self.max_connections}) reached",
                     "retry_after": 1.0},
                    timeout=self.frame_timeout or 5.0)
            except PLDError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):
                pass
            return
        self.active_connections += 1
        try:
            while True:
                try:
                    header, payload = await recv_frame_async(
                        reader, frame_timeout=self.frame_timeout)
                except PLDError:
                    break                 # client went away / bad frame
                except asyncio.CancelledError:
                    break                 # server closing this connection
                self.requests += 1
                op = header.get("op", "")
                handler = getattr(self, f"_op_{op}", None) \
                    if isinstance(op, str) else None
                if handler is None:
                    response: Dict[str, Any] = {
                        "ok": False,
                        "error": f"unknown op {op!r}",
                        "kind": "bad-request"}
                    body = b""
                else:
                    try:
                        response, body = await handler(header, payload,
                                                       reader)
                    except _ClientDisconnected:
                        break
                    except PLDError as exc:
                        response, body = error_to_wire(exc), b""
                    except asyncio.CancelledError:
                        raise
                    except (ValueError, TypeError, KeyError) as exc:
                        # A malformed header the op-specific coercions
                        # missed: the *request* is bad, the connection
                        # is fine — answer and keep serving it.
                        response = {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "kind": "bad-request"}
                        body = b""
                    except Exception as exc:
                        response = {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "kind": "internal"}
                        body = b""
                try:
                    await send_frame_async(writer, response, body,
                                           timeout=self.frame_timeout)
                except PLDError:
                    break
        finally:
            self.active_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):
                pass

    # -- the async store path ------------------------------------------------

    async def _reconcile_loop(self) -> None:
        """Background write-behind drain over asyncio sockets — owed
        puts reach a healed shard without parking executor threads."""
        assert self._store_async is not None
        while not self._stopping.is_set():
            await asyncio.sleep(self.reconcile_interval)
            try:
                self.reconciled += await self._store_async.reconcile()
            except StoreError:
                pass                      # next pass retries

    async def _close_store_async(self) -> None:
        """Reconcile-on-close: settle write-behind debts before the
        streams go away.  The sync client underneath stays open — the
        service's own close() runs its final sync reconcile too."""
        if self._store_async is None:
            return
        try:
            self.reconciled += await self._store_async.reconcile()
        except StoreError:
            pass
        await self._store_async.close()
        self._store_async = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        store = self.service.store
        if store is not None and hasattr(store, "fresh_get"):
            self._store_async = AsyncShardedStoreClient.over(store)
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def serve_until_stopped(self) -> None:
        if self._store_async is not None and self.reconcile_interval:
            self._reconcile_task = asyncio.create_task(
                self._reconcile_loop())
        await self._stopping.wait()
        if self._drain_task is not None and not self._drain_task.done():
            # A shutdown op raced an in-progress drain; the stop wins.
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        if self._reconcile_task is not None:
            self._reconcile_task.cancel()
            try:
                await self._reconcile_task
            except asyncio.CancelledError:
                pass
            self._reconcile_task = None
        await self._close_store_async()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def request_stop(self) -> None:
        self._stopping.set()

    async def _drain_then_stop(self) -> None:
        await self._call(self.service.wait_idle)
        self._stopping.set()

    def request_drain(self) -> None:
        """Flip to draining and stop once the backlog is empty.  The
        SIGTERM handler — so rolling restarts are zero-downtime: new
        submits bounce to peers, running builds finish, session leases
        republish for adoption on close, exit 0."""
        self.service.begin_drain()
        if self._drain_task is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                self._stopping.set()
                return
            self._drain_task = loop.create_task(self._drain_then_stop())


def serve(cache_dir: str, host: str = "127.0.0.1", port: int = 0,
          workers: Optional[int] = None, slots: int = 4,
          quotas: Optional[Dict[str, int]] = None,
          default_quota: Optional[int] = None,
          trace: Optional[str] = None,
          store_urls: Optional[str] = None,
          tokens: Optional[Dict[str, str]] = None,
          reconcile_interval: float = DEFAULT_RECONCILE_INTERVAL,
          daemon_id: Optional[str] = None,
          max_queued: Optional[int] = None,
          max_queued_per_tenant: Optional[int] = None,
          rates: Optional[Dict[str, float]] = None,
          default_rate: Optional[float] = None,
          brownout_high: Optional[float] = None,
          brownout_low: Optional[float] = None,
          hedge_quantile: Optional[float] = None,
          peers: Optional[list] = None,
          max_connections: Optional[int] = None,
          frame_timeout: Optional[float] = None,
          notify=print, ready=None) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT/shutdown.

    Args:
        cache_dir: the state directory — shared artifact store plus
            one journal + lease per leased session under ``sessions/``.
        store_urls: comma-separated shard URLs; the daemon then fronts
            the fleet (shared dedup plane, cross-daemon session
            adoption) instead of a purely local store.
        tokens: per-tenant shared secrets gating ``submit``.
        daemon_id: identity for lease-epoch fencing (host:pid default).
        max_queued / max_queued_per_tenant / rates / default_rate:
            admission control (see :mod:`repro.service.overload`).
        brownout_high / brownout_low: queue-depth EWMA watermarks.
        hedge_quantile: hedged-retry quantile for store reads and o1
            page jobs (brownout disables it).
        peers: alternate daemon addresses handed to clients on drain.
        max_connections / frame_timeout: connection hardening.
        ready: optional callback invoked with ``(host, port)`` once the
            listener is bound (tests use it instead of scraping stdout).

    Returns the process exit code (0 on a clean stop).  SIGTERM drains
    (running builds finish, sessions republish for peer adoption);
    SIGINT stops immediately.
    """
    tracer = None
    if trace:
        from repro.trace import Tracer
        tracer = Tracer()
    service = CompileService(ServiceConfig(
        cache_dir=cache_dir, store_urls=store_urls, shared=True,
        workers=workers, slots=slots, quotas=dict(quotas or {}),
        default_quota=default_quota, tracer=tracer,
        daemon_id=daemon_id, notify=notify,
        max_queued=max_queued,
        max_queued_per_tenant=max_queued_per_tenant,
        rates=dict(rates or {}), default_rate=default_rate,
        brownout_high=brownout_high, brownout_low=brownout_low,
        hedge_quantile=hedge_quantile, peers=list(peers or [])))
    if store_urls and notify is not None:
        urls = list(getattr(service.store, "urls", []) or [])
        notify(f"store: {len(urls)} shard(s): {', '.join(urls)}")
    interrupted = service.interrupted_sessions()
    if interrupted and notify is not None:
        notify(f"found {len(interrupted)} interrupted session(s): "
               f"{', '.join(interrupted)} — they resume on next submit")
    daemon = ServeDaemon(service, host=host, port=port, tokens=tokens,
                         reconcile_interval=reconcile_interval,
                         max_connections=max_connections,
                         frame_timeout=frame_timeout)

    async def _main() -> None:
        bound_host, bound_port = await daemon.start()
        if notify is not None:
            auth = f", {len(daemon.tokens)} tenant token(s)" \
                if daemon.tokens else ""
            notify(f"pld serve listening on {bound_host}:{bound_port} "
                   f"(state: {cache_dir}, pid {os.getpid()}{auth})")
        if ready is not None:
            ready(bound_host, bound_port)
        loop = asyncio.get_running_loop()
        # SIGTERM = the rolling-restart signal: drain, don't drop.
        # SIGINT (^C at a terminal) keeps the immediate stop.
        for sig, action in ((signal.SIGTERM, daemon.request_drain),
                            (signal.SIGINT, daemon.request_stop)):
            try:
                loop.add_signal_handler(sig, action)
            except (NotImplementedError, RuntimeError):
                pass                       # non-main thread / platform
        await daemon.serve_until_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        if tracer is not None and trace:
            tracer.write_chrome_trace(trace)
            if notify is not None:
                notify(f"wrote server trace {trace} "
                       f"({len(tracer)} events)")
    if notify is not None:
        notify(f"pld serve stopped after {daemon.requests} request(s) "
               f"on {daemon.connections} connection(s)")
    return 0


if __name__ == "__main__":               # pragma: no cover
    sys.exit(serve(sys.argv[1] if len(sys.argv) > 1 else ".pld-state"))
