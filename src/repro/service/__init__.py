"""The compile service: one session-manager layer behind every frontend.

``repro.service`` extracts the orchestration that used to live in the
CLI — engine/store/tracer wiring, journals, teardown — into
:class:`CompileService`, then puts two thin frontends over it: the
``pld`` CLI calls it in-process, and the ``pld serve`` daemon exposes
it over TCP to many tenants at once (see DESIGN.md §13).  The
:mod:`~repro.service.overload` layer keeps the daemon alive under a
tenant flood: admission control, class-aware shedding, brownout and
zero-downtime drain (DESIGN.md §16).
"""

from repro.service.core import (
    CompileRequest,
    CompileService,
    RequestOutcome,
    ServiceConfig,
    dedup_summary,
)
from repro.service.overload import (
    SHED_BATCH_FRACTION,
    SHED_INTERACTIVE_FRACTION,
    AdmissionController,
    TokenBucket,
)
from repro.service.scheduler import (
    AGING_ROUNDS,
    PRIORITY_CLASSES,
    RequestScheduler,
    ScheduledRequest,
)
from repro.service.client import ServiceClient

__all__ = [
    "AGING_ROUNDS",
    "AdmissionController",
    "CompileRequest",
    "CompileService",
    "PRIORITY_CLASSES",
    "RequestOutcome",
    "RequestScheduler",
    "SHED_BATCH_FRACTION",
    "SHED_INTERACTIVE_FRACTION",
    "ScheduledRequest",
    "ServiceClient",
    "ServiceConfig",
    "TokenBucket",
    "dedup_summary",
]
