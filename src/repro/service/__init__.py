"""The compile service: one session-manager layer behind every frontend.

``repro.service`` extracts the orchestration that used to live in the
CLI — engine/store/tracer wiring, journals, teardown — into
:class:`CompileService`, then puts two thin frontends over it: the
``pld`` CLI calls it in-process, and the ``pld serve`` daemon exposes
it over TCP to many tenants at once (see DESIGN.md §13).
"""

from repro.service.core import (
    CompileRequest,
    CompileService,
    RequestOutcome,
    ServiceConfig,
    dedup_summary,
)
from repro.service.scheduler import (
    AGING_ROUNDS,
    PRIORITY_CLASSES,
    RequestScheduler,
    ScheduledRequest,
)
from repro.service.client import ServiceClient

__all__ = [
    "AGING_ROUNDS",
    "CompileRequest",
    "CompileService",
    "PRIORITY_CLASSES",
    "RequestOutcome",
    "RequestScheduler",
    "ScheduledRequest",
    "ServiceClient",
    "ServiceConfig",
    "dedup_summary",
]
