"""Fair-share request scheduling for the compile service.

The daemon multiplexes many tenants onto one pool of engine workers;
this module decides *who goes next*.  The policy is deliberately a
plain data structure — no threads, no clocks — so the service can wrap
it in a lock and the fairness properties can be tested exhaustively
(see ``tests/test_service_scheduler.py``):

* **Per-tenant quotas** — a tenant's running requests may never hold
  more than its quota of workers; everyone else's requests stay
  eligible, so one tenant flooding the queue cannot occupy the pool.
* **Fair share** — among eligible requests, the tenant with the least
  service consumed so far (a stride-scheduling virtual time, advanced
  by each request's worker cost on acquire) wins; ties break by
  submission order.
* **Priority classes** — ``deadline`` > ``interactive`` > ``batch``.
  A request with a deadline sorts earliest-deadline-first within its
  class.
* **Aging** — a queued request's effective class improves by one step
  every :data:`AGING_ROUNDS` acquire calls it sits out, without a
  floor, so strict priority cannot starve anyone: a request that has
  waited long enough out-ranks every fresh arrival, deadline class
  included.  Among equally-aged requests virtual time takes over and
  the least-served tenant wins — a waiting tenant's virtual time is
  frozen while everyone being served advances theirs, so it
  eventually becomes the minimum.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServiceError

#: Priority class -> rank (lower runs first).
PRIORITY_CLASSES = {"deadline": 0, "interactive": 1, "batch": 2}

#: Acquire rounds a queued request sits out before its effective
#: priority class improves by one step.
AGING_ROUNDS = 8


@dataclass
class ScheduledRequest:
    """One queue entry (identity is ``seq``, assigned at submit)."""

    seq: int
    tenant: str
    cost: int = 1
    priority: str = "interactive"
    #: Absolute deadline in the caller's clock; only the *ordering*
    #: matters to the scheduler (earliest first within a class).
    deadline_at: Optional[float] = None
    #: Round counter value when the request was submitted (for aging).
    submitted_round: int = 0
    payload: object = None
    rank: int = field(init=False)

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_CLASSES:
            raise ServiceError(
                f"unknown priority class {self.priority!r}; choose "
                f"from {sorted(PRIORITY_CLASSES)}")
        self.rank = PRIORITY_CLASSES[self.priority]
        if self.deadline_at is not None:
            self.rank = PRIORITY_CLASSES["deadline"]


class RequestScheduler:
    """Fair-share scheduler over a fixed pool of engine workers.

    Args:
        total_workers: size of the shared worker pool; the sum of
            running request costs never exceeds it.
        default_quota: per-tenant worker cap when the tenant has no
            explicit entry in ``quotas`` (defaults to the whole pool —
            i.e. quotas off unless configured).
        quotas: explicit per-tenant worker caps.

    All methods are thread-safe (one internal lock); ``acquire`` is
    non-blocking and returns ``None`` when nothing is eligible — the
    service's dispatch loop waits on its own condition variable and
    retries after every submit and release.
    """

    def __init__(self, total_workers: int = 1,
                 default_quota: Optional[int] = None,
                 quotas: Optional[Dict[str, int]] = None):
        if total_workers < 1:
            raise ServiceError("scheduler needs at least one worker")
        self.total_workers = total_workers
        self.default_quota = total_workers if default_quota is None \
            else max(1, default_quota)
        self.quotas = dict(quotas or {})
        self._lock = threading.Lock()
        self._queued: List[ScheduledRequest] = []
        self._running: Dict[int, ScheduledRequest] = {}
        self._in_use: Dict[str, int] = {}
        self._vtime: Dict[str, float] = {}
        self._rounds = 0
        self._seq = 0

    # -- configuration -------------------------------------------------------

    def quota(self, tenant: str) -> int:
        return min(self.total_workers,
                   self.quotas.get(tenant, self.default_quota))

    def in_use(self, tenant: str) -> int:
        with self._lock:
            return self._in_use.get(tenant, 0)

    # -- the queue -----------------------------------------------------------

    def submit(self, tenant: str, *, cost: int = 1,
               priority: str = "interactive",
               deadline_at: Optional[float] = None,
               payload: object = None) -> ScheduledRequest:
        """Enqueue one request; returns its entry (identity: ``seq``)."""
        cost = max(1, min(int(cost), self.total_workers))
        with self._lock:
            self._seq += 1
            entry = ScheduledRequest(
                seq=self._seq, tenant=tenant, cost=cost,
                priority=priority, deadline_at=deadline_at,
                submitted_round=self._rounds, payload=payload)
            self._queued.append(entry)
            return entry

    def cancel(self, seq: int) -> bool:
        """Drop a still-queued request; False if it already ran."""
        with self._lock:
            for i, entry in enumerate(self._queued):
                if entry.seq == seq:
                    del self._queued[i]
                    return True
            return False

    def _effective_rank(self, entry: ScheduledRequest) -> int:
        # Deliberately NOT clamped at zero: deadline ordering sorts
        # before virtual time within a rank, so a clamped rank would
        # let an endless stream of fresh deadline requests starve an
        # aged batch request forever.  Unbounded aging means any
        # waiter eventually out-ranks every fresh arrival.
        waited = self._rounds - entry.submitted_round
        return entry.rank - waited // AGING_ROUNDS

    def acquire(self) -> Optional[ScheduledRequest]:
        """Pick the next request to run, or None.

        The winner's workers are charged against its tenant until
        :meth:`release`; its tenant's virtual time advances by its
        cost, which is what rotates service across tenants.
        """
        with self._lock:
            self._rounds += 1
            free = self.total_workers - sum(
                e.cost for e in self._running.values())
            best: Optional[ScheduledRequest] = None
            best_key = None
            for entry in self._queued:
                if entry.cost > free:
                    continue
                used = self._in_use.get(entry.tenant, 0)
                if used + entry.cost > self.quota(entry.tenant):
                    continue
                key = (self._effective_rank(entry),
                       entry.deadline_at if entry.deadline_at is not None
                       else float("inf"),
                       self._vtime.get(entry.tenant, 0.0),
                       entry.seq)
                if best_key is None or key < best_key:
                    best, best_key = entry, key
            if best is None:
                return None
            self._queued.remove(best)
            self._running[best.seq] = best
            self._in_use[best.tenant] = \
                self._in_use.get(best.tenant, 0) + best.cost
            self._vtime[best.tenant] = \
                self._vtime.get(best.tenant, 0.0) + best.cost
            return best

    def release(self, seq: int) -> None:
        """Return a running request's workers to the pool."""
        with self._lock:
            entry = self._running.pop(seq, None)
            if entry is None:
                raise ServiceError(f"release of unknown request {seq}")
            remaining = self._in_use.get(entry.tenant, 0) - entry.cost
            if remaining > 0:
                self._in_use[entry.tenant] = remaining
            else:
                self._in_use.pop(entry.tenant, None)

    # -- introspection -------------------------------------------------------

    def queued_counts(self) -> "tuple[int, Dict[str, int]]":
        """(total queued, per-tenant queued) — what admission control
        samples before letting a submit enter the queue."""
        with self._lock:
            per_tenant: Dict[str, int] = {}
            for entry in self._queued:
                per_tenant[entry.tenant] = \
                    per_tenant.get(entry.tenant, 0) + 1
            return len(self._queued), per_tenant

    def queue_position(self, seq: int) -> Optional[int]:
        """0-based position in the queue, or None once dequeued."""
        with self._lock:
            for i, entry in enumerate(self._queued):
                if entry.seq == seq:
                    return i
            return None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "queued": len(self._queued),
                "running": len(self._running),
                "workers": self.total_workers,
                "busy_workers": sum(e.cost
                                    for e in self._running.values()),
                "in_use": dict(self._in_use),
                "vtime": dict(self._vtime),
                "rounds": self._rounds,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"RequestScheduler({s['busy_workers']}/"
                f"{s['workers']} workers, {s['queued']} queued)")
