"""Synchronous client for the ``pld serve`` daemon.

The CLI verbs ``pld submit``/``pld status``/``pld result`` (and the
``serve_loadgen`` benchmark's simulated tenants) talk to the daemon
through this class.  One :class:`ServiceClient` holds one TCP
connection and issues request/response frames in
:mod:`repro.store.remote.framing`'s wire format; a server answer with
``ok: false`` re-raises as :class:`~repro.errors.ServiceError`
carrying the server-reported ``kind``, so callers can tell a deadline
expiry (``kind == "deadline"``) from a rejected request.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import OverloadedError, ServiceError, TransportError
from repro.store.remote.framing import recv_frame, send_frame

DEFAULT_TIMEOUT = 30.0
#: Default total budget (seconds) for ``submit(..., wait=True)``.
DEFAULT_SUBMIT_WAIT = 60.0
#: Backoff used when an overload rejection carries no ``retry_after``.
FALLBACK_RETRY_AFTER = 0.5


class ServiceClient:
    """One connection to a compile-service daemon.

    Args:
        host/port: where ``pld serve`` listens.
        timeout: socket timeout for connect and for every response
            *except* ``result``, which blocks server-side for up to the
            caller-supplied wait and gets a correspondingly larger
            socket timeout.
        token: tenant shared secret, attached to every ``submit``
            header (daemons started with ``--token`` reject submits
            without it, ``kind="auth"``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = DEFAULT_TIMEOUT,
                 token: Optional[str] = None,
                 rng: Optional[random.Random] = None,
                 sleep=time.sleep):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.token = token
        #: Jitter source and sleep for overload backoff — injectable so
        #: tests exercise the retry loop deterministically and instantly.
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep
        #: Overload rejections retried by the last waiting submit.
        self.retries = 0
        self._sock: Optional[socket.socket] = None

    # -- transport -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as exc:
                raise TransportError(
                    f"cannot reach pld serve at "
                    f"{self.host}:{self.port}: {exc}",
                    op="connect") from exc
        return self._sock

    def call(self, header: Dict[str, Any],
             timeout: Optional[float] = None
             ) -> Tuple[Dict[str, Any], bytes]:
        """One request/response round trip; raises on ``ok: false``."""
        sock = self._connect()
        sock.settimeout(timeout if timeout is not None
                        else self.timeout)
        try:
            send_frame(sock, header)
            response, payload = recv_frame(sock)
        except TransportError:
            # The connection is in an unknown state; drop it so the
            # next call dials fresh.
            self.close()
            raise
        if not response.get("ok", False):
            kind = str(response.get("kind", ""))
            message = response.get("error", "service request failed")
            retry_after = response.get("retry_after")
            if kind == "overloaded":
                raise OverloadedError(
                    message,
                    retry_after=float(retry_after)
                    if retry_after is not None else 0.0,
                    reason=str(response.get("reason", "")))
            raise ServiceError(
                message, kind=kind,
                retry_after=float(retry_after)
                if retry_after is not None else None,
                peers=tuple(response.get("peers", ()) or ()))
        return response, payload

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        response, _ = self.call({"op": "ping"})
        return response

    def submit(self, app: str, wait: Optional[float] = None,
               **fields) -> str:
        """Enqueue a compile/edit; returns the ticket id.

        ``wait`` is the well-behaved-client knob (``pld submit
        --wait``): on an ``overloaded``/``draining`` rejection, back
        off by the server's ``retry_after`` hint plus up to the hint
        again in jitter (so a shed thundering herd de-synchronizes)
        and retry, up to ``wait`` total seconds.  ``wait=True`` means
        :data:`DEFAULT_SUBMIT_WAIT`; ``None``/``0`` raises immediately
        (the pre-overload behaviour).
        """
        header = {"op": "submit", "app": app}
        if self.token is not None:
            header["token"] = self.token
        header.update({k: v for k, v in fields.items()
                       if v is not None})
        if wait is True:
            wait = DEFAULT_SUBMIT_WAIT
        budget = float(wait) if wait else 0.0
        self.retries = 0
        while True:
            try:
                response, _ = self.call(dict(header))
                return str(response["ticket"])
            except ServiceError as exc:
                if exc.kind not in ("overloaded", "draining"):
                    raise
                hint = exc.retry_after or FALLBACK_RETRY_AFTER
                delay = hint * (1.0 + self.rng.random())
                if delay > budget:
                    raise
                budget -= delay
                self.retries += 1
                self.sleep(delay)

    def status(self, ticket: str) -> Dict[str, Any]:
        response, _ = self.call({"op": "status", "ticket": ticket})
        return response

    def result(self, ticket: str,
               timeout: Optional[float] = None
               ) -> Tuple[Dict[str, Any], bytes]:
        """Block until the ticket finishes.

        Returns ``(summary, manifest_bytes)``; the manifest payload is
        the build's step→content-key map as sorted JSON, so two clients
        can diff byte-for-byte.
        """
        header: Dict[str, Any] = {"op": "result", "ticket": ticket}
        if timeout is not None:
            header["timeout"] = timeout
        # The server blocks until done; give the socket headroom past
        # the server-side wait so we fail with the server's timeout
        # error, not a raw socket timeout.
        sock_timeout = (timeout + self.timeout) if timeout is not None \
            else None
        return self.call(header, timeout=sock_timeout)

    def compile(self, app: str, timeout: Optional[float] = None,
                **fields) -> Tuple[Dict[str, Any], bytes]:
        """Submit + result in one call (the loadgen's inner loop)."""
        return self.result(self.submit(app, **fields), timeout=timeout)

    def stats(self) -> Dict[str, Any]:
        response, _ = self.call({"op": "stats"})
        return response

    def health(self) -> Dict[str, Any]:
        """Liveness + readiness (``ready`` is False while draining)."""
        response, _ = self.call({"op": "health"})
        return response

    def drain(self) -> Dict[str, Any]:
        """Start a zero-downtime drain; returns peer hints."""
        response, _ = self.call({"op": "drain"})
        return response

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit (graceful stop)."""
        response, _ = self.call({"op": "shutdown"})
        return response

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
