"""The compile-service core: one session manager behind every frontend.

Before this package existed, ``repro/cli.py`` wired flows, engines,
stores, journals and tracers together inline, once per invocation.
:class:`CompileService` owns that orchestration instead, so the CLI
(in-process) and the ``pld serve`` daemon (over TCP) are thin frontends
over the same layer:

* **submit/status/result** — requests enter a fair-share
  :class:`~repro.service.scheduler.RequestScheduler` (per-tenant
  quotas, priority/deadline classes) and run on dispatcher-managed
  worker threads; ``result`` blocks until done and re-raises the
  request's failure exactly as an inline call would.
* **Named, leased sessions** — a request naming ``session=`` gets a
  long-lived :class:`~repro.core.IncrementalSession` whose journal
  lives in its own ``sessions/<name>/`` directory next to a
  ``lease.json``.  A killed daemon restarts, finds the lease with an
  interrupted journal, and the next compile into that session resumes
  bit-identically (content keys make correctness; the journal makes
  the bookkeeping).
* **Cross-tenant dedup** — every session and request shares one
  content-addressed store, so two tenants compiling the same operator
  pay once; the second request's steps are store hits, reported as a
  dedup ratio per request and aggregated per tenant.
* **Shared engine workers** — with ``workers > 1`` the service owns a
  single process pool that every request's
  :class:`~repro.core.ParallelBuildEngine` borrows, so concurrent
  requests multiplex one set of engine workers (what the scheduler's
  quotas meter).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError, StoreError
from repro.core import (
    BuildEngine,
    IncrementalSession,
    ParallelBuildEngine,
    touch_spec,
)
from repro.core.flows import FLOWS
from repro.service.overload import AdmissionController
from repro.service.scheduler import RequestScheduler
from repro.trace import NULL_TRACER

#: Subdirectory of the state dir holding one directory per leased
#: session (journal + lease file).
SESSIONS_DIR = "sessions"
#: Lease record inside a session directory.
LEASE_NAME = "lease.json"
#: Store-key prefix for published session metadata (lease + journal),
#: the shared-plane record another daemon adopts a session from.
SESSION_META_PREFIX = "session-meta:"


@dataclass
class CompileRequest:
    """One unit of work for the service (a compile or a session edit)."""

    app: str
    flow: str = "o1"
    effort: float = 0.3
    tenant: str = "default"
    #: Named leased session; None is a one-shot request.
    session: Optional[str] = None
    priority: str = "interactive"
    #: Wall-clock budget in seconds (also promotes the request into
    #: the ``deadline`` scheduling class).
    deadline: Optional[float] = None
    #: Engine workers this request claims against its tenant's quota.
    cost: int = 1
    resume: bool = False
    seed: int = 1
    #: Simulation engine (``scalar``/``vector``) for this request's
    #: placer/ISS kernels.  Bit-identical by contract, so it never
    #: enters content keys: a vector daemon and scalar clients share
    #: one artifact store.  ``None`` keeps the daemon's default.
    sim_engine: Optional[str] = None
    #: When set, the request is an *edit*: touch this operator in the
    #: named session and recompile incrementally ("first-hw" picks the
    #: first hardware operator).
    edit_operator: Optional[str] = None
    edit_tag: str = "edit"
    # Crash-injection hooks (the resume smoke tests; undocumented).
    crash_at_step: Optional[int] = None
    crash_point: str = "mid"


@dataclass
class RequestOutcome:
    """What one finished request produced."""

    ticket: str
    kind: str                     # "compile" | "edit"
    build: Any = None             # FlowBuild
    edit: Any = None              # EditResult for edit requests
    #: Cache-dedup accounting for this request's compile: total steps,
    #: store hits, overall ratio, and the impl-step ratio the
    #: acceptance gate watches.
    dedup: Dict[str, float] = field(default_factory=dict)
    resumed: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    tenant: str = "default"
    session: Optional[str] = None
    #: True when brownout rerouted this compile to the -O0 path.
    brownout: bool = False


def dedup_summary(record) -> Dict[str, float]:
    """Cache-dedup ratios from one engine invocation's BuildRecord."""
    steps = len(record.keys)
    built = len(record.built)
    hits = max(0, steps - built)
    impl = [name for name in record.keys if name.startswith("impl:")]
    impl_built = [name for name in record.built
                  if name.startswith("impl:")]
    return {
        "steps": steps,
        "hits": hits,
        "ratio": (hits / steps) if steps else 1.0,
        "impl_steps": len(impl),
        "impl_hits": len(impl) - len(impl_built),
        "impl_ratio": (1.0 - len(impl_built) / len(impl))
        if impl else 1.0,
    }


class Ticket:
    """Internal per-request record (the public handle is its id)."""

    def __init__(self, ticket_id: str, request: CompileRequest,
                 sched_seq: int):
        self.id = ticket_id
        self.request = request
        self.sched_seq = sched_seq
        self.state = "queued"        # queued|running|done|failed
        self.outcome: Optional[RequestOutcome] = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()
        #: Invoked (with the ticket) when the request finishes; the
        #: daemon registers loop.call_soon_threadsafe wakeups here so
        #: a waiting client costs an asyncio.Event, not a thread.
        self.callbacks: List[Callable[["Ticket"], None]] = []
        self.submitted = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: Set once result() handed the outcome to a caller — such
        #: tickets are the first the GC evicts under count pressure.
        self.delivered = False
        #: Brownout rerouted this request's flow to -O0 at submit.
        self.brownout = False


@dataclass
class ServiceConfig:
    """How a :class:`CompileService` is wired.

    ``shared=False`` (the CLI) reproduces the old per-invocation
    wiring exactly: each request builds its own cache/journal from
    ``cache_dir``/``store_urls``, so manifests and printed stats are
    bit-identical to the pre-service CLI.  ``shared=True`` (the
    daemon, the load generator) pools one store, one process pool and
    per-session journals across every request — the multi-tenant mode.
    """

    cache_dir: Optional[str] = None
    store_urls: Optional[str] = None
    workers: Optional[int] = None
    shared: bool = False
    #: Concurrent requests the scheduler may run (the worker pool the
    #: per-tenant quotas meter).  CLI frontends keep the default 1.
    slots: int = 1
    quotas: Dict[str, int] = field(default_factory=dict)
    default_quota: Optional[int] = None
    tracer: Any = None
    #: Human-facing progress notes (the CLI passes ``print``).
    notify: Optional[Callable[[str], None]] = None
    seed: int = 1
    #: Stable identity for lease-epoch fencing across daemons sharing
    #: a store fleet; defaults to ``host:pid``.
    daemon_id: Optional[str] = None
    # -- overload protection (all off by default: None = unbounded,
    # -- the pre-admission-control behaviour) --------------------------
    #: Global bound on queued (not yet running) requests.
    max_queued: Optional[int] = None
    #: Per-tenant bound on queued requests.
    max_queued_per_tenant: Optional[int] = None
    #: Per-tenant token-bucket rates, requests/second (``--rate``).
    rates: Dict[str, float] = field(default_factory=dict)
    #: Rate for tenants without an explicit entry (None = unlimited).
    default_rate: Optional[float] = None
    #: Queue-depth EWMA watermarks for brownout enter/exit; defaults
    #: derive from ``max_queued`` (see :mod:`repro.service.overload`).
    brownout_high: Optional[float] = None
    brownout_low: Optional[float] = None
    #: Hedged-retry quantile for the shared store and o1 page-compile
    #: cluster; brownout disables it until the EWMA recovers.
    hedge_quantile: Optional[float] = None
    #: Peer daemon addresses suggested to clients on drain rejections.
    peers: List[str] = field(default_factory=list)
    #: Finished-ticket GC: evict tickets this long after they finish.
    ticket_ttl: Optional[float] = 900.0
    #: Finished-ticket GC: hard cap on retained tickets (delivered
    #: results evict first, queued/running never).
    max_tickets: Optional[int] = 4096


class _SessionState:
    """A leased session held open by the service."""

    def __init__(self, name: str, session: IncrementalSession,
                 directory: pathlib.Path):
        self.name = name
        self.session = session
        self.directory = directory
        self.lock = threading.Lock()
        self.tenant = ""
        self.app = ""
        self.edits = 0
        self.resumed_last = 0
        #: Fencing epoch: bumped past the published epoch every time a
        #: daemon (re)opens the session, so exactly one daemon's writes
        #: are current and a stale owner fences itself off.
        self.epoch = 0
        self.owner = ""


class CompileService:
    """The session manager the CLI and the daemon both talk to."""

    def __init__(self, config: Optional[ServiceConfig] = None, **kwargs):
        self.config = config if config is not None \
            else ServiceConfig(**kwargs)
        self.tracer = self.config.tracer \
            if self.config.tracer is not None else NULL_TRACER
        self.shared = self.config.shared
        self.daemon_id = self.config.daemon_id or \
            f"{socket.gethostname()}:{os.getpid()}"
        self.store = self._build_store() if self.shared else None
        self.scheduler = RequestScheduler(
            total_workers=max(1, self.config.slots),
            default_quota=self.config.default_quota,
            quotas=self.config.quotas)
        self.admission = AdmissionController(
            max_queued=self.config.max_queued,
            max_queued_per_tenant=self.config.max_queued_per_tenant,
            rates=self.config.rates,
            default_rate=self.config.default_rate,
            slots=max(1, self.config.slots),
            brownout_high=self.config.brownout_high,
            brownout_low=self.config.brownout_low,
            on_brownout=self._on_brownout,
            tracer=self.tracer)
        self._admit_lock = threading.Lock()
        self._draining = False
        self.peers: List[str] = list(self.config.peers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._tickets: Dict[str, Ticket] = {}
        self._by_seq: Dict[int, Ticket] = {}
        self._sessions: Dict[str, _SessionState] = {}
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._counter = 0
        self._closed = False
        self._stopping = False
        self._active: List[threading.Thread] = []
        self._tenant_totals: Dict[str, Dict[str, float]] = {}
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="pld-dispatch", daemon=True)
        self._dispatcher.start()

    # -- wiring (the orchestration that used to live in cli.py) -------------

    def _notify(self, message: str) -> None:
        if self.config.notify is not None:
            self.config.notify(message)

    def _build_store(self):
        """The service-owned store (daemon mode): every request and
        session shares it, which is where cross-tenant dedup comes
        from."""
        from repro.store import ArtifactStore

        if self.config.store_urls:
            from repro.store.remote import ShardedStoreClient
            fallback = ArtifactStore(cache_dir=self.config.cache_dir)
            return ShardedStoreClient(
                self.config.store_urls, fallback=fallback,
                hedge_quantile=self.config.hedge_quantile,
                tracer=self.tracer)
        return ArtifactStore(cache_dir=self.config.cache_dir)

    def _shared_pool(self) -> Optional[ProcessPoolExecutor]:
        if not self.config.workers or self.config.workers <= 1:
            return None
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers)
            return self._pool

    def build_engine(self, request: Optional[CompileRequest] = None,
                     tracer=None) -> BuildEngine:
        """One request's engine: cache, journal, deadline, crash plan.

        In CLI mode this is byte-for-byte the old ``cli._engine``
        wiring (private cache and root journal per invocation); in
        shared mode the engine borrows the service store and process
        pool and skips the root journal (leased sessions journal in
        their own directories instead).
        """
        req = request if request is not None else CompileRequest(app="")
        tracer = tracer if tracer is not None else self.tracer
        cache = None
        journal = None
        owns_cache = True
        if self.shared:
            cache = self.store
            owns_cache = False
        elif self.config.store_urls:
            from repro.store import ArtifactStore
            from repro.store.remote import ShardedStoreClient
            fallback = ArtifactStore(cache_dir=self.config.cache_dir)
            cache = ShardedStoreClient(self.config.store_urls,
                                       fallback=fallback, tracer=tracer)
        elif self.config.cache_dir:
            from repro.store import ArtifactStore
            cache = ArtifactStore(cache_dir=self.config.cache_dir)
        if not self.shared and self.config.cache_dir:
            from repro.resilience import BuildJournal
            journal = BuildJournal(self.config.cache_dir,
                                   resume=bool(req.resume))
            if journal.resuming and journal.interrupted:
                self._notify(
                    f"resuming interrupted build: "
                    f"{len(journal.completed)} journaled step(s) "
                    f"already banked in {self.config.cache_dir}")
        deadline = None
        if req.deadline is not None:
            from repro.resilience import Deadline
            deadline = Deadline(req.deadline)
        crash_plan = None
        if req.crash_at_step is not None:
            from repro.faults import CrashPlan
            crash_plan = CrashPlan(req.crash_at_step,
                                   point=req.crash_point,
                                   mode="sigkill")
        workers = self.config.workers
        if workers is not None and workers > 1:
            return ParallelBuildEngine(
                cache=cache, workers=workers, tracer=tracer,
                journal=journal, deadline=deadline,
                crash_plan=crash_plan,
                pool=self._shared_pool() if self.shared else None,
                owns_cache=owns_cache)
        return BuildEngine(cache=cache, tracer=tracer, journal=journal,
                           deadline=deadline, crash_plan=crash_plan,
                           owns_cache=owns_cache)

    def make_flow(self, name: str, effort: float, seed: int = 1,
                  sim_engine: Optional[str] = None):
        try:
            cls = FLOWS[name]
        except KeyError:
            raise ServiceError(f"unknown flow {name!r}; choose from "
                               f"{sorted(FLOWS)}", kind="bad-request")
        if sim_engine is not None:
            from repro.simengine import ENGINES
            if sim_engine not in ENGINES:
                raise ServiceError(
                    f"unknown sim engine {sim_engine!r}; choose from "
                    f"{list(ENGINES)}", kind="bad-request")
        kwargs: Dict[str, Any] = {"effort": effort,
                                  "sim_engine": sim_engine}
        # Hedged page-compile retries for the o1 cluster — but not
        # during brownout, when speculation is the wrong spend.
        if name in ("o0", "o1") \
                and self.config.hedge_quantile is not None \
                and not self.admission.brownout:
            from repro.core.cluster import CompileCluster
            kwargs["cluster"] = CompileCluster(
                hedge_quantile=self.config.hedge_quantile)
        return cls(**kwargs)

    def open_session(self, effort: float = 0.3, cache_dir=None,
                     store_urls=None, tracer=None) -> IncrementalSession:
        """A CLI-mode :class:`IncrementalSession` wired like the old
        ``pld edit`` path (the session owns its store)."""
        from repro.store import ArtifactStore

        tracer = tracer if tracer is not None else self.tracer
        cache_dir = cache_dir if cache_dir is not None \
            else self.config.cache_dir
        store_urls = store_urls if store_urls is not None \
            else self.config.store_urls
        # One local store either way: cache_dir=None is the documented
        # memory-only mode of ArtifactStore, so both branches share the
        # same construction — with a fleet it becomes the client's
        # hot tier / degraded fallback, without one it *is* the store.
        local = ArtifactStore(cache_dir=cache_dir)
        if store_urls:
            from repro.store.remote import ShardedStoreClient
            store = ShardedStoreClient(store_urls, fallback=local,
                                       tracer=tracer)
        else:
            store = local
        return IncrementalSession(store=store, effort=effort,
                                  tracer=tracer)

    # -- session leases ------------------------------------------------------

    def _sessions_root(self) -> Optional[pathlib.Path]:
        if not self.config.cache_dir:
            return None
        return pathlib.Path(self.config.cache_dir) / SESSIONS_DIR

    def _write_lease(self, directory: pathlib.Path,
                     lease: Dict[str, Any]) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / (LEASE_NAME + ".tmp")
        tmp.write_text(json.dumps(lease, sort_keys=True, indent=2))
        os.replace(tmp, directory / LEASE_NAME)

    def _read_lease(self, directory: pathlib.Path) -> Dict[str, Any]:
        try:
            return json.loads((directory / LEASE_NAME).read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    # -- shared-plane session metadata (cross-daemon migration) --------------

    def _session_meta_key(self, name: str) -> str:
        return SESSION_META_PREFIX + name

    def _journal_text(self, directory: pathlib.Path) -> str:
        from repro.resilience.journal import journal_path
        try:
            return journal_path(directory).read_text()
        except OSError:
            return ""

    def _published_meta(self, name: str) -> Optional[Dict[str, Any]]:
        """The session metadata another daemon last published to the
        shard fleet, or None without a fleet / publication.  Read
        remote-first (``fresh_get``): the local hot tier would shadow
        a peer's newer epoch forever."""
        store = self.store
        if store is None or not hasattr(store, "fresh_get"):
            return None
        try:
            meta = store.fresh_get(self._session_meta_key(name))
        except StoreError:
            return None
        return meta if isinstance(meta, dict) else None

    def _publish_session(self, state: _SessionState,
                         lease: Dict[str, Any]) -> None:
        """Push the session's lease + journal to the shared store so a
        peer daemon can adopt it.  No-op without a shard fleet; a
        quarantined shard turns this into an owed write-behind put,
        drained by the next reconcile — publication is best-effort
        bookkeeping, the content-addressed artefacts are what make a
        cross-daemon resume bit-identical."""
        store = self.store
        if store is None or not hasattr(store, "fresh_get"):
            return
        if not state.directory.name:
            return
        meta = {"lease": dict(lease),
                "journal": self._journal_text(state.directory)}
        try:
            store.put(self._session_meta_key(state.name), meta)
        except StoreError:
            pass

    def _adopt_session(self, name: str,
                       directory: Optional[pathlib.Path]) -> int:
        """Reconcile local lease state with the fleet's published copy
        before opening ``name``; returns the fencing epoch this daemon
        now owns.

        When a peer's published epoch exceeds the local lease's, the
        peer owned the session more recently (possibly on a different
        machine): replay its lease + journal into our session
        directory, then claim ownership by bumping past every epoch
        seen.  Two daemons racing this protocol converge on
        last-adopter-wins — the loser's next build trips
        :meth:`_check_fence`, so at most one daemon's session writes
        stay current.
        """
        local_lease = self._read_lease(directory) \
            if directory is not None else {}
        local_epoch = int(local_lease.get("epoch", 0) or 0)
        published = self._published_meta(name)
        pub_lease = published.get("lease", {}) if published else {}
        pub_epoch = int(pub_lease.get("epoch", 0) or 0)
        if directory is not None and pub_epoch > local_epoch:
            from repro.resilience.journal import journal_path
            directory.mkdir(parents=True, exist_ok=True)
            journal_path(directory).write_text(
                str(published.get("journal", "")))
            self._write_lease(directory, dict(pub_lease))
            self._notify(
                f"session {name!r}: adopted from "
                f"{pub_lease.get('owner', 'unknown daemon')} "
                f"(epoch {pub_epoch})")
        return max(local_epoch, pub_epoch) + 1

    def _check_fence(self, state: _SessionState) -> None:
        """Refuse to build into a session a peer daemon has adopted.

        A published epoch above ours means another daemon ran
        :meth:`_adopt_session` after we did; our lease is stale.  Evict
        the local session state (a later submit re-adopts at a higher
        epoch) and surface the refusal as ``kind="fenced"``.
        """
        published = self._published_meta(state.name)
        if not published:
            return
        pub_lease = published.get("lease", {})
        pub_epoch = int(pub_lease.get("epoch", 0) or 0)
        if pub_epoch <= state.epoch:
            return
        with self._lock:
            if self._sessions.get(state.name) is state:
                del self._sessions[state.name]
        with state.lock:
            state.session.close()
        raise ServiceError(
            f"session {state.name!r} adopted by "
            f"{pub_lease.get('owner', 'another daemon')} at epoch "
            f"{pub_epoch} (ours: {state.epoch}); lease fenced — "
            f"resubmit there, or resubmit here to re-adopt",
            kind="fenced")

    def interrupted_sessions(self) -> List[str]:
        """Leased sessions whose journal shows a build that began but
        never ended — what a killed daemon left behind.  The next
        compile submitted into such a session resumes automatically."""
        root = self._sessions_root()
        if root is None or not root.is_dir():
            return []
        from repro.resilience.journal import journal_path, load_journal
        interrupted = []
        for directory in sorted(root.iterdir()):
            if not directory.is_dir():
                continue
            records, _ = load_journal(journal_path(directory))
            began = sum(1 for r in records if r.get("t") == "build-begin")
            ended = sum(1 for r in records if r.get("t") == "build-end")
            if began > ended:
                interrupted.append(directory.name)
        return interrupted

    def _session_state(self, req: CompileRequest) -> _SessionState:
        if not self.shared:
            raise ServiceError("named sessions need a shared-mode "
                               "service (the daemon)", kind="bad-request")
        name = str(req.session)
        if not name or "/" in name or name.startswith("."):
            raise ServiceError(f"bad session name {name!r}",
                               kind="bad-request")
        with self._lock:
            state = self._sessions.get(name)
            if state is not None:
                return state
        root = self._sessions_root()
        directory = root / name if root is not None else None
        # Adoption first: a peer daemon's published journal must land
        # on disk *before* the interrupted-build scan, so a session
        # killed mid-build on daemon A resumes on daemon B.
        epoch = self._adopt_session(name, directory)
        resume = False
        if directory is not None:
            from repro.resilience.journal import (journal_path,
                                                  load_journal)
            records, _ = load_journal(journal_path(directory))
            began = sum(1 for r in records if r.get("t") == "build-begin")
            ended = sum(1 for r in records if r.get("t") == "build-end")
            resume = began > ended
            if resume:
                self._notify(f"session {name!r}: resuming interrupted "
                             f"build from its journal")
        engine = None
        if self.config.workers is not None and self.config.workers > 1:
            engine = ParallelBuildEngine(
                cache=self.store, workers=self.config.workers,
                tracer=self.tracer, pool=self._shared_pool(),
                owns_cache=False)
        session = IncrementalSession(
            store=self.store, effort=req.effort, seed=req.seed,
            sim_engine=req.sim_engine,
            tracer=self.tracer, resume=resume,
            journal_dir=directory, engine=engine, owns_store=False)
        state = _SessionState(name, session,
                              directory if directory is not None
                              else pathlib.Path("."))
        state.tenant = req.tenant
        state.epoch = epoch
        state.owner = self.daemon_id
        with self._lock:
            clash = self._sessions.get(name)
            if clash is not None:
                session.close()
                return clash
            self._sessions[name] = state
        if directory is not None:
            lease = {
                "session": name, "tenant": req.tenant,
                "app": req.app, "effort": req.effort,
                "status": "idle", "pid": os.getpid(),
                "epoch": state.epoch, "owner": state.owner}
            self._write_lease(directory, lease)
            self._publish_session(state, lease)
            # Republish on every journal append: the pre-build publish
            # alone would leave the fleet with a journal from *before*
            # any step ran, so a daemon SIGKILLed mid-build would hand
            # its adopter nothing to resume.
            if session.journal is not None and self.store is not None \
                    and hasattr(self.store, "fresh_get"):
                session.journal.publish = lambda: self._publish_session(
                    state, self._read_lease(state.directory))
        return state

    # -- the request lifecycle ----------------------------------------------

    def submit(self, request: CompileRequest) -> str:
        """Enqueue a request; returns its ticket id immediately.

        Admission control runs here, *before* the scheduler ever sees
        the request: bounded queue depths, per-tenant rate limits and
        class-aware shedding reject with
        :class:`~repro.errors.OverloadedError` (``kind="overloaded"``,
        ``retry_after`` drain estimate).  A draining service rejects
        everything with ``kind="draining"`` plus peer hints.  During
        brownout, new one-shot compiles reroute to the -O0 degradation
        path (seconds of work instead of minutes).
        """
        if self._closed or self._stopping:
            raise ServiceError("service is shut down", kind="closed")
        if self._draining:
            raise ServiceError(
                "daemon is draining; resubmit to a peer",
                kind="draining", retry_after=1.0,
                peers=tuple(self.peers))
        if request.flow not in FLOWS:
            raise ServiceError(f"unknown flow {request.flow!r}; choose "
                               f"from {sorted(FLOWS)}", kind="bad-request")
        deadline_at = None
        if request.deadline is not None:
            deadline_at = time.monotonic() + float(request.deadline)
        # A deadline promotes the request into the deadline scheduling
        # class (scheduler behaviour); shed decisions must agree.
        shed_class = "deadline" if deadline_at is not None \
            else request.priority
        brownout = False
        # One lock around sample-depths → admit → enqueue: a barrage of
        # concurrent submits must not all sample the same (stale) depth
        # and overshoot the bound.
        with self._admit_lock:
            queued, per_tenant = self.scheduler.queued_counts()
            self.admission.admit(
                request.tenant, priority=shed_class, queued=queued,
                queued_tenant=per_tenant.get(request.tenant, 0))
            if self.admission.brownout and request.session is None \
                    and request.edit_operator is None \
                    and request.flow in ("o1", "o3"):
                request = replace(request, flow="o0")
                brownout = True
                self.admission.note_routed()
            entry = self.scheduler.submit(
                request.tenant, cost=request.cost,
                priority=request.priority, deadline_at=deadline_at)
        with self._lock:
            self._counter += 1
            ticket = Ticket(f"t{self._counter:04d}", request, entry.seq)
            ticket.brownout = brownout
            self._tickets[ticket.id] = ticket
            self._by_seq[entry.seq] = ticket
            self._wake.notify_all()
        self._gc_tickets()
        self.tracer.instant(f"submit:{ticket.id}", category="service",
                            lane=f"tenant:{request.tenant}",
                            app=request.app, flow=request.flow,
                            session=request.session or "",
                            brownout=brownout)
        return ticket.id

    def _gc_tickets(self) -> None:
        """Evict finished tickets so the registry stays bounded.

        Two policies compose: a TTL on finished tickets (an abandoned
        result eventually goes away even if nobody collects it) and a
        hard count cap, under which delivered results evict first,
        then oldest-finished.  Queued/running tickets never evict.
        """
        ttl = self.config.ticket_ttl
        cap = self.config.max_tickets
        if ttl is None and cap is None:
            return
        now = time.monotonic()
        with self._lock:
            finished = [t for t in self._tickets.values()
                        if t.finished is not None]
            doomed = [t for t in finished
                      if ttl is not None and now - t.finished >= ttl]
            if cap is not None \
                    and len(self._tickets) - len(doomed) > cap:
                doomed_ids = {t.id for t in doomed}
                spare = [t for t in finished
                         if t.id not in doomed_ids]
                spare.sort(key=lambda t: (not t.delivered, t.finished))
                excess = len(self._tickets) - len(doomed) - cap
                doomed.extend(spare[:excess])
            for t in doomed:
                self._tickets.pop(t.id, None)
                self._by_seq.pop(t.sched_seq, None)

    def _ticket(self, ticket_id: str) -> Ticket:
        with self._lock:
            ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise ServiceError(f"unknown ticket {ticket_id!r}",
                               kind="unknown-ticket")
        return ticket

    def status(self, ticket_id: str) -> Dict[str, Any]:
        ticket = self._ticket(ticket_id)
        position = self.scheduler.queue_position(ticket.sched_seq)
        return {
            "ticket": ticket.id,
            "state": ticket.state,
            "position": position,
            "tenant": ticket.request.tenant,
            "app": ticket.request.app,
            "flow": ticket.request.flow,
            "session": ticket.request.session,
        }

    def add_done_callback(self, ticket_id: str,
                          fn: Callable[[Ticket], None]) -> None:
        """Invoke ``fn(ticket)`` once the request finishes —
        immediately if it already has.  This is the daemon's
        completion-notification hook: one registered callback per
        waiting client instead of one parked executor thread, which is
        what lets 64+ concurrent ``result`` waiters coexist with a
        default executor of ~32 threads."""
        ticket = self._ticket(ticket_id)
        with self._lock:
            if not ticket.done.is_set():
                ticket.callbacks.append(fn)
                return
        fn(ticket)

    def remove_done_callback(self, ticket_id: str,
                             fn: Callable[[Ticket], None]) -> bool:
        """Unregister a pending done-callback (client disconnected
        before its ticket finished).  False when the callback already
        fired, was never registered, or the ticket is gone — all fine:
        the caller only cares that it will not be invoked later."""
        with self._lock:
            ticket = self._tickets.get(ticket_id)
            if ticket is None:
                return False
            try:
                ticket.callbacks.remove(fn)
                return True
            except ValueError:
                return False

    def result(self, ticket_id: str,
               timeout: Optional[float] = None) -> RequestOutcome:
        """Block until the request finishes; re-raise its failure."""
        ticket = self._ticket(ticket_id)
        if not ticket.done.wait(timeout):
            raise ServiceError(
                f"request {ticket_id} still {ticket.state} after "
                f"{timeout:g}s", kind="timeout")
        ticket.delivered = True
        self._gc_tickets()
        if ticket.error is not None:
            raise ticket.error
        assert ticket.outcome is not None
        return ticket.outcome

    def compile(self, request: CompileRequest,
                timeout: Optional[float] = None) -> RequestOutcome:
        """Submit + result: the synchronous frontend the CLI uses."""
        return self.result(self.submit(request), timeout=timeout)

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            entry = self.scheduler.acquire()
            if entry is None:
                with self._lock:
                    if self._stopping:
                        return
                    self._wake.wait(timeout=0.2)
                    if self._stopping:
                        return
                continue
            with self._lock:
                ticket = self._by_seq.get(entry.seq)
            if ticket is None:           # cancelled under our feet
                self.scheduler.release(entry.seq)
                continue
            thread = threading.Thread(
                target=self._run_ticket, args=(ticket,),
                name=f"pld-request-{ticket.id}", daemon=True)
            with self._lock:
                self._active.append(thread)
            thread.start()

    def _run_ticket(self, ticket: Ticket) -> None:
        ticket.state = "running"
        ticket.started = time.monotonic()
        try:
            outcome = self._execute(ticket)
            ticket.outcome = outcome
            ticket.state = "done"
        except BaseException as exc:     # noqa: B036 — re-raised in result()
            ticket.error = exc
            ticket.state = "failed"
        finally:
            ticket.finished = time.monotonic()
            self.scheduler.release(ticket.sched_seq)
            if ticket.started is not None:
                self.admission.note_done(ticket.finished - ticket.started)
            # Feed the post-release queue depth to the brownout EWMA so
            # it decays — and brownout exits — as the backlog drains.
            self.admission.observe(self.scheduler.queued_counts()[0])
            with self._lock:
                self._active = [t for t in self._active
                                if t is not threading.current_thread()]
                self._wake.notify_all()
                # done + callback swap under the lock, so a concurrent
                # add_done_callback either enqueues before the swap or
                # sees done set and fires immediately — never neither.
                ticket.done.set()
                callbacks, ticket.callbacks = ticket.callbacks, []
            for fn in callbacks:
                try:
                    fn(ticket)
                except Exception:
                    pass                 # a waiter's bug is its own

    # -- execution -----------------------------------------------------------

    def _app(self, name: str):
        from repro.rosetta import get_app
        return get_app(name)

    def _execute(self, ticket: Ticket) -> RequestOutcome:
        req = ticket.request
        start = time.perf_counter()
        with self.tracer.span(f"request:{ticket.id}",
                              category="service",
                              lane=f"tenant:{req.tenant}",
                              tenant=req.tenant, app=req.app,
                              flow=req.flow,
                              session=req.session or ""):
            if req.session is not None:
                outcome = self._execute_session(ticket)
            else:
                outcome = self._execute_oneshot(ticket)
        outcome.wall_seconds = time.perf_counter() - start
        outcome.brownout = ticket.brownout
        self._charge(req.tenant, outcome)
        return outcome

    def _charge(self, tenant: str, outcome: RequestOutcome) -> None:
        with self._lock:
            totals = self._tenant_totals.setdefault(
                tenant, {"requests": 0, "steps": 0, "hits": 0})
            totals["requests"] += 1
            totals["steps"] += outcome.dedup.get("steps", 0)
            totals["hits"] += outcome.dedup.get("hits", 0)

    def _execute_oneshot(self, ticket: Ticket) -> RequestOutcome:
        req = ticket.request
        app = self._app(req.app)
        engine = self.build_engine(req)
        journal = getattr(engine, "journal", None)
        try:
            if journal is not None:
                journal.begin_build(req.flow, req.app)
            flow = self.make_flow(req.flow, req.effort, req.seed,
                                  sim_engine=req.sim_engine)
            build = flow.compile(app.project, engine)
            if journal is not None:
                journal.end_build()
        finally:
            engine.close()
            if journal is not None:
                journal.close()
        return RequestOutcome(
            ticket=ticket.id, kind="compile", build=build,
            dedup=dedup_summary(engine.record),
            resumed=list(build.resumed), tenant=req.tenant)

    def _execute_session(self, ticket: Ticket) -> RequestOutcome:
        req = ticket.request
        if req.flow != "o1":
            raise ServiceError(
                f"leased sessions compile with the o1 flow, not "
                f"{req.flow!r}", kind="bad-request")
        app = self._app(req.app)
        state = self._session_state(req)
        self._check_fence(state)
        with state.lock:
            lease = {"session": state.name, "tenant": req.tenant,
                     "app": req.app, "effort": req.effort,
                     "status": "active", "pid": os.getpid(),
                     "edits": state.edits,
                     "epoch": state.epoch, "owner": state.owner}
            if state.directory.name:
                self._write_lease(state.directory, lease)
                self._publish_session(state, lease)
            if req.crash_at_step is not None:
                # The crash-resume smoke: SIGKILL this daemon at the
                # Nth cache-miss step of the session's next compile.
                from repro.faults import CrashPlan
                state.session.engine.crash_plan = CrashPlan(
                    req.crash_at_step, point=req.crash_point,
                    mode="sigkill")
            try:
                if req.edit_operator is not None:
                    outcome = self._session_edit(ticket, state, app)
                else:
                    build = state.session.compile(app.project)
                    state.app = req.app
                    outcome = RequestOutcome(
                        ticket=ticket.id, kind="compile", build=build,
                        dedup=dedup_summary(state.session.engine.record),
                        resumed=list(build.resumed),
                        tenant=req.tenant, session=state.name)
            finally:
                lease["status"] = "idle"
                lease["edits"] = state.edits
                if state.directory.name:
                    self._write_lease(state.directory, lease)
                    self._publish_session(state, lease)
        return outcome

    def _session_edit(self, ticket: Ticket, state: _SessionState,
                      app) -> RequestOutcome:
        req = ticket.request
        if state.session.build is None:
            raise ServiceError(
                f"session {state.name!r} has no baseline build to "
                f"edit; submit a compile first", kind="bad-request")
        operator = req.edit_operator
        if operator in (None, "", "first-hw"):
            hw = [name for name, op in
                  state.session.project.graph.operators.items()
                  if op.target == "HW"]
            if not hw:
                raise ServiceError(f"{req.app} has no HW operators "
                                   f"to edit", kind="bad-request")
            operator = hw[0]
        op = state.session.project.graph.operators.get(operator)
        if op is None:
            raise ServiceError(f"no operator {operator!r} in "
                               f"session {state.name!r}",
                               kind="bad-request")
        result = state.session.apply_edit(
            operator, touch_spec(op.hls_spec, tag=req.edit_tag),
            op.sample_spec)
        state.edits += 1
        return RequestOutcome(
            ticket=ticket.id, kind="edit", build=result.build,
            edit=result,
            dedup=dedup_summary(state.session.engine.record),
            resumed=list(result.build.resumed),
            tenant=req.tenant, session=state.name)

    # -- overload / drain -----------------------------------------------------

    def _on_brownout(self, active: bool) -> None:
        """Brownout transition hook: hedged retries are speculation,
        and speculation is the wrong spend when the pool is already
        saturated — disable store-read hedging on enter, restore the
        configured quantile on exit.  (Cluster-job hedging is decided
        per flow in :meth:`make_flow`, which checks the live brownout
        flag.)"""
        store = self.store
        if store is not None and hasattr(store, "hedge_quantile"):
            store.hedge_quantile = None if active \
                else self.config.hedge_quantile

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Flip to draining: new submits reject with ``kind="draining"``
        (plus peer hints); queued and running work continues.  Pair
        with :meth:`wait_idle` then :meth:`close` for a zero-downtime
        handoff — close republishes every session lease so a peer
        adopts them."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        self.tracer.instant("drain:begin", category="service",
                            lane="service")
        self._notify("draining: rejecting new submits, finishing "
                     "running builds")

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or running (True), or the
        timeout passes (False)."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            if self._closed:
                return False
            s = self.scheduler.stats()
            with self._lock:
                active = len(self._active)
            if s["queued"] == 0 and s["running"] == 0 and active == 0:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    # -- introspection / lifecycle -------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            tenants = {t: dict(v) for t, v in
                       self._tenant_totals.items()}
            tickets = len(self._tickets)
            sessions = sorted(self._sessions)
        steps = sum(v["steps"] for v in tenants.values())
        hits = sum(v["hits"] for v in tenants.values())
        out = {
            "tickets": tickets,
            "sessions": sessions,
            "tenants": tenants,
            "dedup_ratio": (hits / steps) if steps else 1.0,
            "scheduler": self.scheduler.stats(),
            "admission": self.admission.snapshot(),
            "draining": self._draining,
        }
        if self.store is not None:
            out["store"] = dict(self.store.stats())
        return out

    def close(self, timeout: float = 30.0) -> None:
        """Drain running requests, close sessions, pool and store
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._stopping = True
            self._wake.notify_all()
            active = list(self._active)
        self._dispatcher.join(timeout=5.0)
        deadline = time.monotonic() + timeout
        for thread in active:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions = {}
        for state in sessions:
            with state.lock:
                state.session.close()
            if state.directory.name:
                lease = self._read_lease(state.directory)
                lease["status"] = "released"
                self._write_lease(state.directory, lease)
                self._publish_session(state, lease)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self.store is not None:
            close = getattr(self.store, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"CompileService({state}, "
                f"{len(self._tickets)} ticket(s), "
                f"{len(self._sessions)} session(s))")
