"""Overload protection for the compile service: admit → shed → brownout.

A daemon that accepts unbounded work melts down exactly when it is
needed most — the paper's whole premise is that compilation stays
interactive, so the service layer must degrade *gracefully* under a
tenant flood instead of queueing without bound.  This module is the
policy layer :class:`~repro.service.core.CompileService` consults at
submit time, deliberately free of threads and wall clocks (both are
injectable) so every decision is unit-testable:

* **Admission control** — a global bounded queue depth
  (``max_queued``), a per-tenant bound (``max_queued_per_tenant``) and
  per-tenant token-bucket rate limits (``rates`` / ``default_rate``).
  A rejected submit raises :class:`~repro.errors.OverloadedError`
  carrying a computed ``retry_after`` drain estimate.
* **Class-aware load shedding** — between "plenty of room" and "queue
  full" sit two watermarks: past :data:`SHED_BATCH_FRACTION` of the
  queue bound new ``batch`` requests are shed, past
  :data:`SHED_INTERACTIVE_FRACTION` new ``interactive`` requests shed
  too; ``deadline``-class requests are only refused when the queue is
  genuinely full.  Shedding cheap work first keeps the interactive
  edit loop alive through a batch flood.
* **Brownout** — a time-decayed EWMA of queue depth detects *sustained*
  overload (a single burst does not trip it).  Above
  ``brownout_high`` the service enters brownout: new one-shot compiles
  route to the existing -O0 degradation path (seconds, not minutes,
  of work) and hedged retries are disabled (speculation is the wrong
  spend when the pool is saturated).  The EWMA must fall below
  ``brownout_low`` to exit — hysteresis, so the mode does not flap.

State transitions surface as ``brownout:enter`` / ``brownout:exit``
trace instants and every decision increments a counter in
:attr:`AdmissionController.counters`, exported via service ``stats``.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import OverloadedError
from repro.trace import NULL_TRACER

#: Fraction of ``max_queued`` past which new batch-class requests shed.
SHED_BATCH_FRACTION = 0.5
#: Fraction past which interactive requests shed too (deadline-class
#: requests ride until the queue is genuinely full).
SHED_INTERACTIVE_FRACTION = 0.8
#: Default fraction of ``max_queued`` for the brownout high watermark.
BROWNOUT_HIGH_FRACTION = 0.75
#: Queue-depth EWMA time constant (seconds): how much history "sustained
#: overload" looks at.
EWMA_TAU_SECONDS = 2.0
#: Floor for every retry_after hint — never tell a client "retry now".
MIN_RETRY_AFTER = 0.1


class TokenBucket:
    """A per-tenant request-rate limiter (``--rate TENANT=N/s``).

    Classic token bucket: tokens accrue at ``rate`` per second up to
    ``burst``; each admitted request spends one.  :meth:`try_take`
    returns 0.0 on admit, else the seconds until enough tokens accrue —
    which is exactly the ``retry_after`` the rejection should carry.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        #: Burst capacity; defaults to one second's worth (min 1).
        self.burst = float(burst) if burst is not None \
            else max(1.0, self.rate)
        self.clock = clock
        self.tokens = self.burst
        self._last = clock()

    def try_take(self, cost: float = 1.0) -> float:
        """Spend ``cost`` tokens; 0.0 on success, else seconds to wait."""
        now = self.clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate

    def __repr__(self) -> str:
        return (f"TokenBucket({self.tokens:.2f}/{self.burst:g} tokens, "
                f"{self.rate:g}/s)")


class AdmissionController:
    """The submit-time gate: bounded queues, rate limits, shed, brownout.

    Args:
        max_queued: global queued-request bound (None = unbounded, the
            pre-overload-protection behaviour).
        max_queued_per_tenant: per-tenant queued bound.
        rates: per-tenant token-bucket rates (requests/second).
        default_rate: rate for tenants without an explicit entry
            (None = unlimited).
        slots: the scheduler's concurrency — used only to estimate how
            fast the queue drains for ``retry_after`` hints.
        brownout_high/brownout_low: queue-depth EWMA watermarks for
            entering/leaving brownout.  Defaults derive from
            ``max_queued`` (:data:`BROWNOUT_HIGH_FRACTION`, low = half
            of high); both None disables brownout.
        on_brownout: callback invoked with ``True``/``False`` on
            enter/exit (the service hooks hedged-retry disabling here).
        clock: injectable monotonic clock (tests use a fake).
        tracer: receives ``brownout:enter``/``exit`` instants on the
            ``service`` lane.
    """

    def __init__(self, *, max_queued: Optional[int] = None,
                 max_queued_per_tenant: Optional[int] = None,
                 rates: Optional[Dict[str, float]] = None,
                 default_rate: Optional[float] = None,
                 slots: int = 1,
                 brownout_high: Optional[float] = None,
                 brownout_low: Optional[float] = None,
                 ewma_tau: float = EWMA_TAU_SECONDS,
                 on_brownout: Optional[Callable[[bool], None]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer=None):
        self.max_queued = max_queued
        self.max_queued_per_tenant = max_queued_per_tenant
        self.rates = dict(rates or {})
        self.default_rate = default_rate
        self.slots = max(1, slots)
        if brownout_high is None and max_queued is not None:
            brownout_high = BROWNOUT_HIGH_FRACTION * max_queued
        self.brownout_high = brownout_high
        self.brownout_low = brownout_low if brownout_low is not None \
            else (brownout_high / 2.0 if brownout_high else None)
        self.ewma_tau = ewma_tau
        self.on_brownout = on_brownout
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self.brownout = False
        self.ewma = 0.0
        self._ewma_at = clock()
        #: Mean request wall seconds (EWMA), seeding the drain estimate.
        self._avg_wall = 1.0
        self.counters: Dict[str, int] = {
            "admitted": 0, "rejected": 0, "rate_limited": 0,
            "shed_batch": 0, "shed_interactive": 0, "shed_deadline": 0,
            "queue_full": 0, "tenant_queue_full": 0,
            "brownout_enters": 0, "brownout_exits": 0,
            "brownout_routed": 0,
        }

    # -- rate limits ---------------------------------------------------------

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        rate = self.rates.get(tenant, self.default_rate)
        if rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(rate, clock=self.clock)
            self._buckets[tenant] = bucket
        return bucket

    # -- the brownout EWMA ---------------------------------------------------

    def _update_ewma(self, depth: int) -> None:
        """Fold ``depth`` into the time-decayed queue-depth EWMA and
        fire a brownout transition when a watermark is crossed."""
        now = self.clock()
        dt = max(0.0, now - self._ewma_at)
        self._ewma_at = now
        alpha = 1.0 - math.exp(-dt / self.ewma_tau) if dt > 0 else 0.0
        self.ewma += alpha * (depth - self.ewma)
        # A submit observing a deeper queue than the EWMA pulls it up
        # immediately by a small step too, so a standing-start flood
        # (dt≈0 between submits) still registers as sustained load.
        if depth > self.ewma:
            self.ewma += 0.1 * (depth - self.ewma)
        if self.brownout_high is None:
            return
        if not self.brownout and self.ewma >= self.brownout_high:
            self.brownout = True
            self.counters["brownout_enters"] += 1
            self.tracer.instant("brownout:enter", category="service",
                                lane="service",
                                ewma=round(self.ewma, 2),
                                high=self.brownout_high)
            if self.on_brownout is not None:
                self.on_brownout(True)
        elif self.brownout and self.brownout_low is not None \
                and self.ewma <= self.brownout_low:
            self.brownout = False
            self.counters["brownout_exits"] += 1
            self.tracer.instant("brownout:exit", category="service",
                                lane="service",
                                ewma=round(self.ewma, 2),
                                low=self.brownout_low)
            if self.on_brownout is not None:
                self.on_brownout(False)

    def observe(self, depth: int) -> None:
        """Feed a queue-depth sample outside submit (request release,
        stats polls) so the EWMA decays — and brownout exits — even
        when nobody is submitting."""
        with self._lock:
            self._update_ewma(depth)

    def note_routed(self) -> None:
        """Count one compile brownout rerouted to the -O0 path."""
        with self._lock:
            self.counters["brownout_routed"] += 1

    def note_done(self, wall_seconds: float) -> None:
        """Fold one finished request's wall time into the drain-rate
        estimate behind ``retry_after``."""
        with self._lock:
            self._avg_wall += 0.2 * (max(0.0, wall_seconds)
                                     - self._avg_wall)

    # -- retry_after ---------------------------------------------------------

    def _drain_estimate(self, excess: float) -> float:
        """Seconds until ``excess`` queued requests drain through the
        slot pool, by the observed mean request wall time."""
        return max(MIN_RETRY_AFTER,
                   round(excess * self._avg_wall / self.slots, 3))

    # -- the gate ------------------------------------------------------------

    def admit(self, tenant: str, *, priority: str = "interactive",
              queued: int = 0, queued_tenant: int = 0) -> None:
        """Admit or shed one submit.

        ``queued``/``queued_tenant`` are the scheduler's current queue
        depths (sampled by the caller under its submit lock).  Raises
        :class:`OverloadedError` on rejection; on return the request
        may enter the scheduler.
        """
        with self._lock:
            self._update_ewma(queued)
            reason = self._reject_reason(tenant, priority, queued,
                                         queued_tenant)
            if reason is None:
                self.counters["admitted"] += 1
                return
            kind, retry_after, message = reason
            self.counters["rejected"] += 1
            self.counters[kind.replace("-", "_")] = \
                self.counters.get(kind.replace("-", "_"), 0) + 1
        raise OverloadedError(message, retry_after=retry_after,
                              reason=kind)

    def _reject_reason(self, tenant: str, priority: str, queued: int,
                       queued_tenant: int):
        """(reason, retry_after, message) or None — under the lock."""
        if self.max_queued is not None and queued >= self.max_queued:
            return ("queue-full",
                    self._drain_estimate(queued - self.max_queued + 1),
                    f"queue full ({queued}/{self.max_queued} queued); "
                    f"all classes shed")
        if self.max_queued_per_tenant is not None \
                and queued_tenant >= self.max_queued_per_tenant:
            return ("tenant-queue-full",
                    self._drain_estimate(queued_tenant
                                         - self.max_queued_per_tenant
                                         + 1),
                    f"tenant {tenant!r} queue full ({queued_tenant}/"
                    f"{self.max_queued_per_tenant} queued)")
        if self.max_queued is not None and priority != "deadline":
            # Class-aware shedding between the watermarks: batch goes
            # first, interactive next, deadline rides to the bound.
            fraction = SHED_BATCH_FRACTION if priority == "batch" \
                else SHED_INTERACTIVE_FRACTION
            watermark = fraction * self.max_queued
            if queued >= watermark:
                return (f"shed-{priority}",
                        self._drain_estimate(queued - watermark + 1),
                        f"shedding {priority}-class work: {queued} "
                        f"queued ≥ {priority} watermark "
                        f"{watermark:g}/{self.max_queued}")
        bucket = self._bucket(tenant)
        if bucket is not None:
            wait = bucket.try_take()
            if wait > 0:
                return ("rate-limit", max(MIN_RETRY_AFTER,
                                          round(wait, 3)),
                        f"tenant {tenant!r} over its "
                        f"{bucket.rate:g}/s rate limit")
        return None

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "brownout": self.brownout,
                "queue_ewma": round(self.ewma, 3),
                "max_queued": self.max_queued,
                "max_queued_per_tenant": self.max_queued_per_tenant,
                "rates": dict(self.rates),
                "default_rate": self.default_rate,
                "counters": dict(self.counters),
            }

    def __repr__(self) -> str:
        state = "brownout" if self.brownout else "normal"
        return (f"AdmissionController({state}, "
                f"ewma={self.ewma:.2f}, "
                f"{self.counters['rejected']} rejected)")
