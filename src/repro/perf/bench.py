"""The tracked benchmark suite: ``pld bench`` / ``python -m repro.perf.bench``.

Runs a fixed set of hot-path workloads — NoC drains, the Rosetta
-O0/-O1/-O3 flows, the cycle simulator and a warm-vs-cold incremental
edit — best-of-N, and writes the results to ``BENCH_pld.json`` so the
numbers live in the repository and CI can fail on a regression
(``--check``).  ``--quick`` scales every suite down for smoke runs;
``--profile`` prints a per-phase breakdown per suite.

The *metrics* each suite reports (cycle counts, makespans, deflections)
are deterministic and double as a coarse equivalence check: an
optimisation that changes them changed behaviour, not just speed.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.perf import PerfRegistry
from repro.trace import NULL_TRACER

#: A suite regressing past this ratio of its recorded baseline fails
#: ``--check``.
REGRESSION_RATIO = 2.0

#: Best-of-N runs per suite (wall time keeps the minimum).
DEFAULT_REPEATS = 2


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


# --------------------------------------------------------------------------
# suites
# --------------------------------------------------------------------------


def _drain_topology(topo, n_ports: int, per_leaf: int, seed: int,
                    reliable: bool = False, faults=None):
    """All-to-all drain load over an existing topology (any leaf count)."""
    from repro.noc.leaf import LeafInterface
    from repro.noc.netsim import NetworkSimulator

    rng = random.Random(seed)
    n_leaves = topo.n_leaves
    kwargs = dict(reliable=True, retransmit_timeout=64) if reliable else {}
    leaves = {i: LeafInterface(i, n_ports=n_ports, **kwargs)
              for i in range(n_leaves)}
    sim = NetworkSimulator(topo, leaves, faults=faults)
    for i in range(n_leaves):
        for p in range(n_ports):
            leaves[i].bind(p, rng.randrange(n_leaves), p)
    for i in range(n_leaves):
        for k in range(per_leaf):
            leaves[i].send(k % n_ports, (i * 1000 + k) & 0xFFFFFFFF)
    return sim


def _drain_fixture(n_leaves: int, n_ports: int, per_leaf: int, seed: int,
                   reliable: bool = False, faults=None):
    from repro.noc.bft import BFTopology

    return _drain_topology(BFTopology(n_leaves), n_ports, per_leaf,
                           seed, reliable=reliable, faults=faults)


def bench_noc_drain(quick: bool = False,
                    registry: Optional[PerfRegistry] = None):
    """Drain an all-to-all packet load through the deflection NoC.

    Full mode uses a 512-leaf fabric — big-device territory, where the
    vector engine's batched router pays off (the per-switch Python
    loop dominates scalar stepping at this scale).
    """
    registry = registry if registry is not None else PerfRegistry()
    n_leaves, n_ports, per_leaf = (16, 4, 60) if quick else (512, 8, 60)
    with registry.timer("setup"):
        sim = _drain_fixture(n_leaves, n_ports, per_leaf, seed=7)
    with registry.timer("run"):
        wall, cycles = _timed(lambda: sim.run(max_cycles=2_000_000))
    registry.count("packets_delivered", len(sim.delivered))
    return wall, {"cycles": cycles, "delivered": len(sim.delivered),
                  "deflections": sim.total_deflections,
                  "mean_latency": sim.mean_latency()}


def bench_noc_reliable(quick: bool = False,
                       registry: Optional[PerfRegistry] = None):
    """Reliable (ack + retransmit) drain under injected drop faults."""
    from repro.faults import FaultPlan

    registry = registry if registry is not None else PerfRegistry()
    per_leaf = 30 if quick else 120
    plan = FaultPlan(seed=11, noc_drop_rate=0.01, noc_corrupt_rate=0.005)
    with registry.timer("setup"):
        sim = _drain_fixture(16, 2, per_leaf, seed=11, reliable=True,
                             faults=plan.noc_faults())
    with registry.timer("run"):
        wall, cycles = _timed(lambda: sim.run(max_cycles=2_000_000))
    return wall, {"cycles": cycles, "delivered": len(sim.delivered),
                  "dropped": sim.faults_dropped}


def _profile_engine(engine, registry: PerfRegistry) -> None:
    """Fold the engine's per-step build times into phase buckets."""
    for name, seconds in engine.record.build_seconds.items():
        phase = name.split(":", 1)[0]
        registry.add_seconds(f"step:{phase}", seconds)


def bench_o1(quick: bool = False,
             registry: Optional[PerfRegistry] = None):
    """Separate page compiles of the Rosetta digit-recognition app."""
    from repro.core import BuildEngine, O1Flow
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    effort = 0.1 if quick else 0.3
    with registry.timer("setup"):
        app = get_app("digit-recognition")
        engine = BuildEngine()
    with registry.timer("run"):
        wall, build = _timed(
            lambda: O1Flow(effort=effort).compile(app.project, engine))
    _profile_engine(engine, registry)
    return wall, {"makespan_s": build.compile_times.total}


def bench_o0(quick: bool = False,
             registry: Optional[PerfRegistry] = None):
    """Softcore-everything compile plus ISS execution."""
    from repro.core import BuildEngine, O0Flow
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    with registry.timer("setup"):
        app = get_app("digit-recognition")
        engine = BuildEngine()

    def go():
        build = O0Flow(effort=0.1).compile(app.project, engine)
        build.execute(app.project.sample_inputs)
        return build

    with registry.timer("run"):
        wall, build = _timed(go)
    _profile_engine(engine, registry)
    return wall, {"riscv_s": build.riscv_seconds}


def bench_o3(quick: bool = False,
             registry: Optional[PerfRegistry] = None):
    """Monolithic device-scale place-and-route of 3d-rendering."""
    from repro.core import BuildEngine, O3Flow
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    effort = 0.1 if quick else 0.3
    with registry.timer("setup"):
        app = get_app("3d-rendering")
        engine = BuildEngine()
    with registry.timer("run"):
        wall, build = _timed(
            lambda: O3Flow(effort=effort).compile(app.project, engine))
    _profile_engine(engine, registry)
    return wall, {"makespan_s": build.compile_times.total}


def bench_cycle_sim(quick: bool = False,
                    registry: Optional[PerfRegistry] = None):
    """Repeated cycle-accurate simulation of optical-flow."""
    from repro.dataflow.cycle_sim import CycleSimulator
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    repeats = 2 if quick else 12
    with registry.timer("setup"):
        app = get_app("optical-flow")

    def go():
        for _ in range(repeats):
            sim = CycleSimulator(app.project.graph)
            sim.run({k: list(v)
                     for k, v in app.project.sample_inputs.items()})
        return sim.makespan

    with registry.timer("run"):
        wall, makespan = _timed(go)
    registry.count("repeats", repeats)
    return wall, {"makespan_cycles": makespan}


def bench_incremental(quick: bool = False,
                      registry: Optional[PerfRegistry] = None):
    """Cold session compile, then a one-operator warm edit."""
    from repro.core import IncrementalSession, touch_spec
    from repro.store import ArtifactStore
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    effort = 0.1 if quick else 0.3
    with registry.timer("setup"):
        app = get_app("digit-recognition")
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(cache_dir=tmp)
        session = IncrementalSession(store=store, effort=effort)
        with registry.timer("cold_compile"):
            cold_wall, _build = _timed(
                lambda: session.compile(app.project))
        ops = [n for n, op in app.project.graph.operators.items()
               if op.target == "HW"]
        op = app.project.graph.operators[ops[0]]
        with registry.timer("warm_edit"):
            warm_wall, result = _timed(lambda: session.apply_edit(
                ops[0], touch_spec(op.hls_spec), op.sample_spec))
    return cold_wall, {"warm_seconds": round(warm_wall, 4),
                       "pages_rebuilt":
                       len(result.build.recompiled_pages)}


def bench_store_sharded(quick: bool = False,
                        registry: Optional[PerfRegistry] = None):
    """8 concurrent writers against a 3-shard fleet, then warm reads.

    Measures what the remote store exists for: concurrent writers
    deduplicating through content addressing (a cold client finds every
    artefact another client compiled), and the warm-hit read latency a
    recompile actually pays per reused step.
    """
    import hashlib
    import statistics
    import threading

    from repro.store import ArtifactStore
    from repro.store.remote import ShardedStoreClient, StoreServer

    registry = registry if registry is not None else PerfRegistry()
    writers = 8
    per_writer = 10 if quick else 40
    #: half the key space is shared across writers — overlapping puts
    #: of identical content, the cross-client dedup case.
    shared = per_writer // 2

    def key_of(writer, i):
        tag = "shared" if i < shared else f"w{writer}"
        return hashlib.sha256(f"{tag}:{i}".encode()).hexdigest()

    with tempfile.TemporaryDirectory() as tmp:
        with registry.timer("setup"):
            servers = [
                StoreServer(ArtifactStore(
                    cache_dir=f"{tmp}/shard{i}")).start()
                for i in range(3)]
            urls = [server.url for server in servers]

        def write(writer):
            client = ShardedStoreClient(urls)
            for i in range(per_writer):
                client.put(key_of(writer, i),
                           {"writer": "any", "index": i,
                            "payload": list(range(64))})
            client.close()

        def write_all():
            threads = [threading.Thread(target=write, args=(w,))
                       for w in range(writers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        with registry.timer("write"):
            write_wall, _ = _timed(write_all)

        unique = {key_of(w, i) for w in range(writers)
                  for i in range(per_writer)}
        # A cold client (empty local tier) must find every artefact
        # remotely — that is the cross-process dedup guarantee.
        reader = ShardedStoreClient(urls)
        latencies = []
        with registry.timer("read"):
            def read_all():
                for key in sorted(unique):
                    start = time.perf_counter()
                    hit = reader.get(key)
                    latencies.append(time.perf_counter() - start)
                    assert hit is not None
            read_wall, _ = _timed(read_all)
        dedup_hits = reader.stats()["remote_hits"]
        reader.close()
        for server in servers:
            server.stop()

    registry.count("writers", writers)
    registry.count("keys_unique", len(unique))
    warm_p50_us = statistics.median(latencies) * 1e6
    return write_wall + read_wall, {
        "keys_unique": len(unique),
        "writes_total": writers * per_writer,
        "dedup_remote_hits": dedup_hits,
        "warm_hit_p50_us": round(warm_p50_us, 1),
    }


def bench_serve_loadgen(quick: bool = False,
                        registry: Optional[PerfRegistry] = None):
    """N simulated tenants hammering one ``pld serve`` daemon.

    Each tenant opens a leased session on the shared daemon, compiles
    the same application (so every tenant after the first dedups its
    impl steps through the shared store), then submits a stream of
    zipf-distributed operator edits — a few hot operators take most of
    the edits, the tail is cold — which is what an interactive fleet
    looks like.  Reports client-observed p50/p99 request latency and
    the cross-tenant dedup ratio the shared store achieved.
    """
    import statistics
    import threading

    from repro.rosetta import get_app
    from repro.service.client import ServiceClient
    from repro.service.daemon import serve

    registry = registry if registry is not None else PerfRegistry()
    tenants = 2 if quick else 4
    # Quick mode is a CI smoke run: one edit per tenant at minimal
    # effort keeps the whole suite under ~2s wall.
    edits_per_tenant = 1 if quick else 5
    effort = 0.05 if quick else 0.3
    app_name = "digit-recognition"

    hw_ops = [name for name, op in
              get_app(app_name).project.graph.operators.items()
              if op.target == "HW"]
    # Zipf-ish edit mix: operator at popularity rank r drawn with
    # weight 1/(r+1)^1.1.
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(hw_ops))]

    with tempfile.TemporaryDirectory() as tmp:
        address = {}
        ready = threading.Event()
        with registry.timer("setup"):
            server = threading.Thread(
                target=serve,
                kwargs=dict(cache_dir=tmp, workers=None,
                            slots=max(2, tenants), notify=None,
                            ready=lambda h, p: (
                                address.update(host=h, port=p),
                                ready.set())),
                daemon=True)
            server.start()
            if not ready.wait(timeout=30):
                raise RuntimeError("pld serve did not come up")

        latencies: List[float] = []
        baselines: Dict[str, Dict] = {}
        lock = threading.Lock()

        def tenant_load(index: int) -> None:
            rng = random.Random(1000 + index)
            name = f"tenant{index}"
            with ServiceClient(address["host"],
                               address["port"]) as client:
                start = time.perf_counter()
                summary, _ = client.compile(
                    app_name, tenant=name, session=f"s-{name}",
                    effort=effort, timeout=300)
                first = time.perf_counter() - start
                with lock:
                    latencies.append(first)
                    baselines[name] = summary["dedup"]
                for _ in range(edits_per_tenant):
                    op = rng.choices(hw_ops, weights=weights)[0]
                    start = time.perf_counter()
                    client.compile(app_name, tenant=name,
                                   session=f"s-{name}", effort=effort,
                                   edit_operator=op, timeout=300)
                    with lock:
                        latencies.append(time.perf_counter() - start)

        def run_fleet() -> None:
            threads = [threading.Thread(target=tenant_load, args=(i,))
                       for i in range(tenants)]
            # Stagger tenant 0 so one tenant's cold compile seeds the
            # store before the rest arrive (the steady-state shape).
            threads[0].start()
            threads[0].join()
            for t in threads[1:]:
                t.start()
            for t in threads[1:]:
                t.join()

        with registry.timer("load"):
            wall, _ = _timed(run_fleet)

        with ServiceClient(address["host"], address["port"]) as client:
            stats = client.stats()
            client.shutdown()
        server.join(timeout=30)

    registry.count("tenants", tenants)
    registry.count("requests", len(latencies))
    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    # Every tenant after the seeder should find its impl steps already
    # in the shared store — the cross-tenant dedup guarantee.
    follower_impl = [d["impl_ratio"] for name, d in baselines.items()
                     if name != "tenant0"]
    return wall, {
        "tenants": tenants,
        "requests": len(latencies),
        "p50_ms": round(p50 * 1e3, 1),
        "p99_ms": round(p99 * 1e3, 1),
        "dedup_ratio": round(stats["dedup_ratio"], 4),
        "cross_tenant_impl_dedup": round(min(follower_impl), 4)
        if follower_impl else 1.0,
    }


def bench_serve_overload(quick: bool = False,
                         registry: Optional[PerfRegistry] = None):
    """A deterministic submit flood against a bounded daemon.

    One ``pld serve`` daemon with a single slot and a small
    ``--max-queued`` takes a burst flood from the fault plan's
    overload injector (pure function of the seed, so the admit/shed
    split replays).  Reports the shed rate, the p99 client-observed
    latency of the *admitted* requests, and whether every admitted
    deadline-class request completed — the load-shedding contract:
    under flood, cheap work sheds so important work stays fast.
    """
    import statistics
    import threading

    from repro.errors import OverloadedError
    from repro.faults import FaultPlan
    from repro.service.client import ServiceClient
    from repro.service.daemon import serve

    registry = registry if registry is not None else PerfRegistry()
    bursts = 2 if quick else 4
    burst_size = 8 if quick else 16
    max_queued = 4 if quick else 8
    effort = 0.05
    app_name = "digit-recognition"

    plan = FaultPlan(7, overload_bursts=bursts,
                     overload_burst_size=burst_size,
                     overload_tenants=("flood-a", "flood-b"),
                     overload_deadline_fraction=0.25)
    injector = plan.overload_faults()

    with tempfile.TemporaryDirectory() as tmp:
        address = {}
        ready = threading.Event()
        with registry.timer("setup"):
            server = threading.Thread(
                target=serve,
                kwargs=dict(cache_dir=tmp, workers=None, slots=1,
                            max_queued=max_queued, notify=None,
                            ready=lambda h, p: (
                                address.update(host=h, port=p),
                                ready.set())),
                daemon=True)
            server.start()
            if not ready.wait(timeout=30):
                raise RuntimeError("pld serve did not come up")

        admitted: List[Dict] = []
        retry_afters: List[float] = []
        with registry.timer("flood"), \
                ServiceClient(address["host"],
                              address["port"]) as client:
            flood_wall, _ = _timed(lambda: None)
            start_flood = time.perf_counter()
            for b in range(bursts):
                for i, (tenant, priority, cost) in \
                        enumerate(injector.burst(b)):
                    fields = dict(flow="o0", effort=effort,
                                  tenant=tenant, cost=cost)
                    if priority == "deadline":
                        fields["deadline"] = 120.0
                    else:
                        fields["priority"] = priority
                    t0 = time.perf_counter()
                    try:
                        ticket = client.submit(app_name, **fields)
                    except OverloadedError as exc:
                        injector.record_shed(tenant, exc.reason, b, i)
                        if exc.retry_after:
                            retry_afters.append(exc.retry_after)
                        continue
                    injector.record_admitted(tenant, b, i)
                    admitted.append({"ticket": ticket,
                                     "priority": priority,
                                     "submitted": t0})
            # Collect every admitted result; latency is client-observed
            # submit→done wall (queueing included — that is the point).
            latencies = []
            deadline_done = 0
            deadline_total = 0
            for entry in admitted:
                summary, _ = client.result(entry["ticket"],
                                           timeout=300)
                latencies.append(time.perf_counter()
                                 - entry["submitted"])
                if entry["priority"] == "deadline":
                    deadline_total += 1
                    deadline_done += 1 if summary.get("ok") else 0
            flood_wall = time.perf_counter() - start_flood
            stats = client.stats()
            client.shutdown()
        server.join(timeout=30)

    flood = bursts * burst_size
    registry.count("flood_submits", flood)
    registry.count("shed", injector.shed)
    ordered = sorted(latencies) or [0.0]
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    counters = stats["admission"]["counters"]
    return flood_wall, {
        "flood_submits": flood,
        "admitted": injector.admitted,
        "shed": injector.shed,
        "shed_rate": round(injector.shed / flood, 4),
        "admitted_p50_ms": round(
            statistics.median(ordered) * 1e3, 1),
        "admitted_p99_ms": round(p99 * 1e3, 1),
        "mean_retry_after_s": round(
            statistics.mean(retry_afters), 3) if retry_afters else 0.0,
        "deadline_admitted": deadline_total,
        "deadline_completed": deadline_done,
        "shed_batch": counters.get("shed_batch", 0),
        "shed_interactive": counters.get("shed_interactive", 0),
    }


def bench_scaling(quick: bool = False,
                  registry: Optional[PerfRegistry] = None):
    """Big-device end-to-end: -O1 on a scaled multi-SLR overlay.

    Quick compiles against the 40-page U280 floorplan (3 SLRs); full
    against the 80-page VU19P (4 SLRs) — the scale the vector engines
    exist for.  Compiles and executes digit-recognition, then drains an
    all-to-all load over a NoC sized to the overlay's leaf count and
    reports the SLR-cut geometry of the link network.
    """
    from repro.core import BuildEngine, O1Flow
    from repro.fabric import Overlay, XCU280, XCVU19P
    from repro.noc.bft import BFTopology
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    device = XCU280 if quick else XCVU19P
    with registry.timer("setup"):
        overlay = Overlay.for_device(device)
        topo = BFTopology.for_overlay(overlay)
        app = get_app("digit-recognition")
        engine = BuildEngine()

    def compile_and_execute():
        build = O1Flow(overlay=overlay, effort=0.1).compile(
            app.project, engine)
        outputs = build.execute(app.project.sample_inputs)
        return build, outputs

    with registry.timer("compile"):
        compile_wall, (build, _outputs) = _timed(compile_and_execute)
    _profile_engine(engine, registry)

    def drain():
        sim = _drain_topology(topo, n_ports=4,
                              per_leaf=10 if quick else 20, seed=7)
        cycles = sim.run(max_cycles=2_000_000)
        return sim, cycles

    with registry.timer("drain"):
        drain_wall, (sim, cycles) = _timed(drain)
    cuts = topo.slr_cut_links()
    registry.count("pages", len(overlay.pages))
    return compile_wall + drain_wall, {
        "device": device.name,
        "pages": len(overlay.pages),
        "slrs": len(device.slrs),
        "slr_cut_links": len(cuts),
        "max_slrs_spanned": max((n for _, n in cuts), default=1),
        "makespan_s": build.compile_times.total,
        "noc_cycles": cycles,
        "noc_delivered": len(sim.delivered),
    }


# --------------------------------------------------------------------------
# kernel micro-benchmarks (``pld bench --kernel``)
# --------------------------------------------------------------------------


def _kernel_head_to_head(run, registry: PerfRegistry):
    """Time one kernel workload under both engines and compare.

    ``run(engine_name)`` builds a fresh workload under the named engine
    and returns its deterministic observables.  The observables must be
    identical across engines — the bit-identical contract — or the
    suite fails.  The headline wall time is the *vector* run (the path
    the optimisation ships); the scalar time and speedup ride along as
    metrics.
    """
    from repro.simengine import engine_scope

    walls: Dict[str, float] = {}
    observed: Dict[str, Dict] = {}
    for name in ("scalar", "vector"):
        with registry.timer(name):
            with engine_scope(name):
                walls[name], observed[name] = _timed(lambda: run(name))
    if observed["scalar"] != observed["vector"]:
        raise AssertionError(
            "engines diverge on deterministic observables: "
            f"scalar={observed['scalar']!r} "
            f"vector={observed['vector']!r}")
    speedup = (walls["scalar"] / walls["vector"]
               if walls["vector"] > 0 else float("inf"))
    return walls["vector"], {
        "scalar_s": round(walls["scalar"], 4),
        "vector_s": round(walls["vector"], 4),
        "speedup": round(speedup, 3),
        **observed["scalar"],
    }


def bench_kernel_noc(quick: bool = False,
                     registry: Optional[PerfRegistry] = None):
    """Deflection-router inner loop, scalar vs vector.

    Quick runs a 64-leaf fabric (small enough that the scalar engine
    can still win — numpy batching has per-cycle overhead); full runs
    256 leaves, where the vector engine's per-switch batching pays.
    """
    registry = registry if registry is not None else PerfRegistry()
    n_leaves, n_ports, per_leaf = (64, 8, 30) if quick else (512, 8, 60)

    def run(engine):
        sim = _drain_fixture(n_leaves, n_ports, per_leaf, seed=7)
        cycles = sim.run(max_cycles=2_000_000)
        return {"cycles": cycles, "delivered": len(sim.delivered),
                "deflections": sim.total_deflections}

    return _kernel_head_to_head(run, registry)


def bench_kernel_annealer(quick: bool = False,
                          registry: Optional[PerfRegistry] = None):
    """Simulated-annealing placer inner loop, scalar vs vector.

    Both engines consume the same RNG stream (move proposals and
    accept draws), so the placement and its statistics are pinned to
    be identical — the speedup comes purely from batched delta-HPWL
    evaluation between the draws.
    """
    from repro.fabric.shell import Overlay
    from repro.hls.estimate import estimate_operator
    from repro.hls.netlist import synthesize_netlist
    from repro.pnr.pack import pack_netlist
    from repro.pnr.placer import place
    from repro.rosetta import get_app

    registry = registry if registry is not None else PerfRegistry()
    effort = 0.3 if quick else 2.0
    app = get_app("digit-recognition")
    # The biggest HW operator gives the annealer a real net count.
    op_name, op = max(
        ((n, o) for n, o in app.project.graph.operators.items()
         if o.target == "HW"),
        key=lambda item: estimate_operator(item[1].hls_spec).luts)
    estimate = estimate_operator(op.hls_spec)
    netlist = synthesize_netlist(
        op_name, estimate, n_ports=len(op.inputs) + len(op.outputs))
    grid = list(Overlay().pages)[0].page_type.grid()

    def run(engine):
        placement = place(pack_netlist(netlist), grid, seed=2,
                          effort=effort)
        stats = placement.stats
        return {"moves_evaluated": stats.moves_evaluated,
                "moves_accepted": stats.moves_accepted,
                "final_cost": round(stats.final_cost, 6)}

    return _kernel_head_to_head(run, registry)


def bench_kernel_iss(quick: bool = False,
                     registry: Optional[PerfRegistry] = None):
    """Softcore ISS dispatch loop, scalar vs vector (basic-block cache).

    A compiled arithmetic-heavy streaming operator processes a long
    token stream; the vector engine replays decoded basic blocks
    instead of re-dispatching instruction by instruction.
    """
    from repro.dataflow import DataflowGraph, Operator, run_graph
    from repro.hls import OperatorBuilder
    from repro.softcore import compile_operator

    registry = registry if registry is not None else PerfRegistry()
    tokens = 400 if quick else 4000
    b = OperatorBuilder("hotmix", inputs=[("a", 32), ("b", 32)],
                        outputs=[("o", 32)])
    with b.loop("L", tokens, pipeline=True):
        x = b.read("a")
        y = b.read("b")
        s = b.add(x, y)
        d = b.sub(x, y)
        p = b.mul(b.cast(x, 16), b.cast(y, 16))
        q = b.div(x, b.or_(y, 1))
        r = b.mod(x, b.or_(y, 3))
        acc = b.xor(b.and_(s, d), b.or_(p, q))
        acc = b.add(b.xor(acc, r), b.and_(p, s))
        b.write("o", b.cast(acc, 32))
    spec = b.build()
    compiled = compile_operator(spec)
    rng = random.Random(5)
    inputs = {"a": [rng.randrange(1 << 31) for _ in range(tokens)],
              "b": [rng.randrange(1 << 31) for _ in range(tokens)]}

    def run(engine):
        telemetry: Dict[str, object] = {}
        op = Operator(spec.name,
                      compiled.make_body(telemetry=telemetry,
                                         engine=engine),
                      spec.input_ports, spec.output_ports)
        g = DataflowGraph("bench_iss")
        g.add(op)
        for port in spec.input_ports:
            g.expose_input(port, f"{spec.name}.{port}")
        for port in spec.output_ports:
            g.expose_output(port, f"{spec.name}.{port}")
        outputs = run_graph(g, inputs)
        cpu = telemetry[spec.name]
        return {"retired": cpu.instructions_retired,
                "checksum": sum(outputs["o"]) & 0xFFFFFFFF}

    return _kernel_head_to_head(run, registry)


#: suite name -> callable(quick, registry) -> (wall_seconds, metrics)
SUITES: Dict[str, Callable] = {
    "noc_drain": bench_noc_drain,
    "noc_reliable_drain": bench_noc_reliable,
    "rosetta_o1": bench_o1,
    "rosetta_o0": bench_o0,
    "rosetta_o3": bench_o3,
    "cycle_sim": bench_cycle_sim,
    "incremental_edit": bench_incremental,
    "store_sharded": bench_store_sharded,
    "serve_loadgen": bench_serve_loadgen,
    "serve_overload": bench_serve_overload,
    "scaling": bench_scaling,
}

#: scalar-vs-vector micro-benchmarks; run via ``pld bench --kernel``
#: (not part of the default tracked set — they time both engines and
#: assert the deterministic observables match).
KERNEL_SUITES: Dict[str, Callable] = {
    "kernel_noc_router": bench_kernel_noc,
    "kernel_annealer": bench_kernel_annealer,
    "kernel_iss": bench_kernel_iss,
}

#: every runnable suite, for ``--suite`` lookup.
ALL_SUITES: Dict[str, Callable] = {**SUITES, **KERNEL_SUITES}


# --------------------------------------------------------------------------
# harness
# --------------------------------------------------------------------------


def run_suites(names: Optional[List[str]] = None, quick: bool = False,
               repeats: int = DEFAULT_REPEATS, profile: bool = False,
               out=sys.stdout, tracer=None,
               sim_engine: Optional[str] = None) -> Dict[str, Dict]:
    """Run the selected suites best-of-``repeats``; returns the results
    dict that ``BENCH_pld.json`` stores.

    A suite that raises does not abort the run: its entry becomes
    ``{"error": "..."}`` and the remaining suites still execute (the
    caller decides the exit code), so one broken workload never costs
    the whole results file.  With a tracer, every repeat is a
    wall-clock span on the ``bench`` lane.  ``sim_engine`` runs every
    suite under that simulation engine (the kernel suites set their own
    per-engine scopes inside and are unaffected).
    """
    from repro.simengine import engine_scope

    tracer = tracer if tracer is not None else NULL_TRACER
    # Resolved at call time so tests can monkeypatch SUITES.
    available = {**SUITES, **KERNEL_SUITES}
    results: Dict[str, Dict] = {}
    for name in (names or list(SUITES)):
        if name not in available:
            raise SystemExit(f"unknown bench suite {name!r}; "
                             f"have: {', '.join(available)}")
        best: Optional[float] = None
        meta: Dict = {}
        best_registry = PerfRegistry()
        try:
            for repeat in range(max(1, repeats)):
                registry = PerfRegistry()
                with tracer.span(f"suite:{name}", category="bench",
                                 lane="bench", quick=quick,
                                 repeat=repeat) as span:
                    with engine_scope(sim_engine):
                        wall, metrics = available[name](
                            quick=quick, registry=registry)
                    span.set(suite_wall_s=round(wall, 4))
                if best is None or wall < best:
                    best, meta, best_registry = wall, metrics, registry
        except Exception as exc:
            results[name] = {"error": f"{type(exc).__name__}: {exc}"}
            print(f"{name}: ERROR {type(exc).__name__}: {exc}",
                  file=out, flush=True)
            continue
        results[name] = {"wall_seconds": round(best, 4), **meta}
        print(f"{name}: {results[name]}", file=out, flush=True)
        if profile:
            print(best_registry.format_table(), file=out)
    return results


def check_regressions(results: Dict[str, Dict], baseline: Dict[str, Dict],
                      ratio: float = REGRESSION_RATIO,
                      out=sys.stdout) -> List[str]:
    """Names of suites slower than ``ratio`` × their baseline.

    Baseline suites absent from ``results`` are warned about rather
    than silently skipped (a renamed or dropped suite should not make
    the check vacuous), and a suite that errored while its baseline has
    a number counts as failed.
    """
    failed: List[str] = []
    for name in baseline:
        if name not in results:
            print(f"warning: baseline suite {name!r} not in results; "
                  f"not checked", file=out)
    for name, entry in results.items():
        base = baseline.get(name)
        if not base or "wall_seconds" not in base:
            continue
        new = entry.get("wall_seconds")
        if new is None:
            failed.append(name)
            print(f"REGRESSION {name}: suite errored "
                  f"({entry.get('error', 'no wall_seconds')}) but "
                  f"baseline has {base['wall_seconds']:.4f}s", file=out)
            continue
        old = base["wall_seconds"]
        if old > 0 and new > old * ratio:
            failed.append(name)
            print(f"REGRESSION {name}: {new:.4f}s vs baseline "
                  f"{old:.4f}s (> {ratio:.1f}x)", file=out)
    return failed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pld bench",
        description="Run the tracked PLD benchmark suite.")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down suites for CI smoke runs")
    parser.add_argument("--suite", action="append", dest="suites",
                        metavar="NAME",
                        help="run only this suite (repeatable); "
                        f"one of: {', '.join(ALL_SUITES)}")
    parser.add_argument("--kernel", action="store_true",
                        help="run the scalar-vs-vector kernel "
                        "micro-benchmarks "
                        f"({', '.join(KERNEL_SUITES)}) instead of the "
                        "tracked suites")
    parser.add_argument("--sim-engine", choices=("scalar", "vector"),
                        default=None,
                        help="simulation engine for every suite "
                        "(default: ambient/scalar); results are "
                        "bit-identical either way — only wall times "
                        "move")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="best-of-N runs per suite (default "
                        f"{DEFAULT_REPEATS})")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase breakdown per suite")
    parser.add_argument("--output", default="BENCH_pld.json",
                        help="result file (default BENCH_pld.json)")
    parser.add_argument("--check", metavar="BASELINE", nargs="?",
                        const="BENCH_pld.json", default=None,
                        help="compare against a baseline JSON (default "
                        "BENCH_pld.json) and fail on a "
                        f">{REGRESSION_RATIO:.0f}x regression")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write the result file")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the "
                        "bench run (one span per suite repeat)")
    args = parser.parse_args(argv)

    baseline: Optional[Dict[str, Dict]] = None
    if args.check:
        try:
            with open(args.check) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"note: baseline {args.check!r} not found; "
                  "regression check skipped")
        except json.JSONDecodeError as exc:
            # A corrupt baseline is a configuration error, not a
            # traceback: one line, nonzero exit, before any suite runs.
            print(f"error: baseline {args.check!r} is not valid JSON "
                  f"({exc})", file=sys.stderr)
            return 2
        if baseline is not None and not isinstance(baseline, dict):
            print(f"error: baseline {args.check!r} is not a "
                  f"suite -> result mapping "
                  f"(got {type(baseline).__name__})", file=sys.stderr)
            return 2
        if baseline == {}:
            print(f"warning: baseline {args.check!r} is empty; "
                  "nothing to compare against", file=sys.stderr)

    tracer = None
    if args.trace:
        from repro.trace import Tracer
        tracer = Tracer()

    names = args.suites
    if names is None and args.kernel:
        names = list(KERNEL_SUITES)
    results = run_suites(names, quick=args.quick,
                         repeats=args.repeats, profile=args.profile,
                         tracer=tracer, sim_engine=args.sim_engine)
    if not args.no_write:
        with open(args.output, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")
    if tracer is not None:
        tracer.write_chrome_trace(args.trace)
        print(f"wrote trace {args.trace}")

    status = 0
    errored = sorted(name for name, entry in results.items()
                     if "error" in entry)
    if errored:
        print(f"error: {len(errored)} suite(s) failed: "
              f"{', '.join(errored)}", file=sys.stderr)
        status = 1
    if baseline is not None:
        failed = check_regressions(results, baseline)
        if failed:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
