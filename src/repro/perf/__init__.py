"""Lightweight performance counters and timers.

The hot paths this PR optimises (NoC stepping, cycle simulation,
placement, routing, the build engine) are measured — not guessed at —
through a :class:`PerfRegistry`: named monotonically-growing counters
and accumulated wall-clock timers with near-zero overhead when idle.
:mod:`repro.perf.bench` runs a fixed benchmark suite through it and
tracks the results in ``BENCH_pld.json`` so regressions show up in CI.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PerfRegistry:
    """Named counters and accumulated timers.

    Counters count events (``count``); timers accumulate seconds and
    call counts (``timer`` context manager or ``add_seconds``).  A
    registry is plain data — ``snapshot`` returns JSON-safe dicts and
    ``format_table`` renders the ``--profile`` breakdown.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add_seconds(self, name: str, seconds: float,
                    calls: int = 1) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - start)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            "counters": dict(self.counters),
            "seconds": {k: round(v, 6) for k, v in self.seconds.items()},
            "calls": dict(self.calls),
        }

    def format_table(self, indent: str = "  ") -> str:
        """Phase breakdown, slowest first."""
        lines = []
        for name, secs in sorted(self.seconds.items(),
                                 key=lambda kv: -kv[1]):
            calls = self.calls.get(name, 0)
            lines.append(f"{indent}{name:<28s} {secs:8.4f} s"
                         f"  ({calls} call{'s' if calls != 1 else ''})")
        for name, value in sorted(self.counters.items()):
            lines.append(f"{indent}{name:<28s} {value:>10d}")
        return "\n".join(lines)

    def clear(self) -> None:
        self.counters.clear()
        self.seconds.clear()
        self.calls.clear()


__all__ = ["PerfRegistry"]
