"""Exception hierarchy shared across the PLD reproduction.

Every package raises subclasses of :class:`PLDError` so callers can catch
framework failures without also swallowing programming errors such as
``TypeError``.  The hierarchy mirrors the major subsystems; see DESIGN.md
for the subsystem inventory.
"""

from __future__ import annotations


class PLDError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DataflowError(PLDError):
    """Malformed dataflow graphs or illegal stream usage."""


class DeadlockError(DataflowError):
    """The Kahn-process-network execution cannot make progress.

    Carries the set of blocked operator names so callers (and tests) can
    report which part of the application stalled.
    """

    def __init__(self, message: str, blocked: tuple = ()):
        super().__init__(message)
        self.blocked = tuple(blocked)


class HLSError(PLDError):
    """Errors in the operator IR or high-level-synthesis pass pipeline."""


class ScheduleError(HLSError):
    """The operation scheduler could not produce a legal schedule."""


class FabricError(PLDError):
    """Device-model or floorplan errors (unknown page, bad region...)."""


class CapacityError(FabricError):
    """An operator does not fit in the page it was assigned to."""

    def __init__(self, message: str, *, resource: str = "", need: int = 0,
                 have: int = 0):
        super().__init__(message)
        self.resource = resource
        self.need = need
        self.have = have


class PnRError(PLDError):
    """Placement or routing failed (unroutable, illegal placement...)."""


class NoCError(PLDError):
    """Linking-network configuration or simulation errors."""


class SoftcoreError(PLDError):
    """RISC-V compilation, assembly or instruction-set-simulator errors."""


class TrapError(SoftcoreError):
    """The simulated processor executed an illegal or unaligned access."""

    def __init__(self, message: str, *, pc: int = 0):
        super().__init__(message)
        self.pc = pc


class PlatformError(PLDError):
    """Card / host-runtime errors (bad xclbin, DMA misuse...)."""


class FlowError(PLDError):
    """PLD toolflow errors (bad pragma, missing target, link failures)."""


class BuildError(FlowError):
    """The incremental build engine detected an inconsistency."""
