"""Exception hierarchy shared across the PLD reproduction.

Every package raises subclasses of :class:`PLDError` so callers can catch
framework failures without also swallowing programming errors such as
``TypeError``.  The hierarchy mirrors the major subsystems; see DESIGN.md
for the subsystem inventory.
"""

from __future__ import annotations


class PLDError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DataflowError(PLDError):
    """Malformed dataflow graphs or illegal stream usage."""


class DeadlockError(DataflowError):
    """The Kahn-process-network execution cannot make progress.

    Carries the set of blocked operator names so callers (and tests) can
    report which part of the application stalled, plus an optional
    structured ``diagnostic`` dump (FIFO occupancies, in-flight packets,
    outstanding requests) that :func:`repro.core.reports.format_deadlock_report`
    renders for the developer.
    """

    def __init__(self, message: str, blocked: tuple = (),
                 diagnostic: dict = None):
        super().__init__(message)
        self.blocked = tuple(blocked)
        self.diagnostic = dict(diagnostic or {})


class HLSError(PLDError):
    """Errors in the operator IR or high-level-synthesis pass pipeline."""


class ScheduleError(HLSError):
    """The operation scheduler could not produce a legal schedule."""


class FabricError(PLDError):
    """Device-model or floorplan errors (unknown page, bad region...)."""


class CapacityError(FabricError):
    """An operator does not fit in the page it was assigned to."""

    def __init__(self, message: str, *, resource: str = "", need: int = 0,
                 have: int = 0):
        super().__init__(message)
        self.resource = resource
        self.need = need
        self.have = have


class PnRError(PLDError):
    """Placement or routing failed (unroutable, illegal placement...)."""


class NoCError(PLDError):
    """Linking-network configuration or simulation errors."""


class SoftcoreError(PLDError):
    """RISC-V compilation, assembly or instruction-set-simulator errors."""


class TrapError(SoftcoreError):
    """The simulated processor executed an illegal or unaligned access.

    ``injected`` is True when the trap came from a fault-injection plan
    rather than the program itself; the softcore's watchdog restart only
    retries injected (transient) traps.
    """

    def __init__(self, message: str, *, pc: int = 0,
                 injected: bool = False):
        super().__init__(message)
        self.pc = pc
        self.injected = injected


class PlatformError(PLDError):
    """Card / host-runtime errors (bad xclbin, DMA misuse...)."""


class FlowError(PLDError):
    """PLD toolflow errors (bad pragma, missing target, link failures)."""


class BuildError(FlowError):
    """The incremental build engine detected an inconsistency."""


class StoreError(BuildError):
    """The artifact store hit a serialization or integrity problem."""


class TransportError(StoreError):
    """A remote-store request failed at the transport layer.

    Covers connection refusal/reset, request deadline expiry, a
    half-closed peer (short read mid-frame) and malformed frames.
    Carries the shard address and the operation so retry layers and
    reports can name the failure domain.
    """

    def __init__(self, message: str, *, shard: str = "", op: str = "",
                 attempt: int = 0):
        super().__init__(message)
        self.shard = shard
        self.op = op
        self.attempt = attempt


class FrameError(TransportError):
    """A remote-store frame failed to parse (corrupt or truncated).

    Distinct from :class:`TransportError` proper so tests can pin down
    *where* a byte stream went bad: framing errors mean the connection
    delivered something, just not a valid frame.
    """


class StoreUnavailableError(TransportError):
    """A shard stayed unreachable past its whole retry budget.

    The sharded client catches this internally and degrades to the
    local fallback store; it only escapes to callers that asked for
    strict (no-fallback) behaviour.
    """


class ServiceError(PLDError):
    """Compile-service errors (unknown ticket, closed service, a
    daemon rejecting a request).

    Raised by :mod:`repro.service` on the server side and re-raised by
    the service client when a daemon answers ``ok: false``; carries the
    server-reported error kind so clients can special-case deadline
    expiries vs. plain failures.
    """

    def __init__(self, message: str, *, kind: str = "",
                 retry_after: float = None, peers: tuple = ()):
        super().__init__(message)
        self.kind = kind
        #: Server-computed backoff hint in seconds (set on overload /
        #: draining rejections; clients add their own jitter).
        self.retry_after = retry_after
        #: Alternate daemon addresses a draining server suggests.
        self.peers = tuple(peers)


class OverloadedError(ServiceError):
    """The service shed this request to protect itself.

    Raised at *submit* — before the scheduler ever sees the request —
    when admission control rejects it: the global or per-tenant queue
    bound is exceeded, the tenant's token-bucket rate limit is dry, or
    a shed watermark was crossed for the request's priority class
    (``batch`` sheds first, ``interactive`` next, ``deadline`` last).
    ``retry_after`` is the server's drain estimate; well-behaved
    clients (``pld submit --wait``) back off by it plus jitter.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0,
                 reason: str = "", kind: str = "overloaded"):
        super().__init__(message, kind=kind, retry_after=retry_after)
        #: What tripped: "queue-full" | "tenant-queue-full" |
        #: "rate-limit" | "shed-batch" | "shed-interactive" | ...
        self.reason = reason


class DeadlineExceeded(PLDError):
    """A compile ran out of its wall-clock budget.

    Raised by the supervision layer (:mod:`repro.resilience`) when a
    :class:`~repro.resilience.Deadline` expires mid-build.  Carries the
    partial results — which steps/jobs already completed and which were
    pending — so the CLI can report what finished and tell the user to
    rerun with ``--resume`` instead of throwing the work away.
    """

    def __init__(self, message: str, *, seconds: float = 0.0,
                 elapsed: float = 0.0, completed: list = None,
                 pending: list = None):
        super().__init__(message)
        self.seconds = seconds
        self.elapsed = elapsed
        self.completed = list(completed or [])
        self.pending = list(pending or [])


class CircuitOpenError(BuildError):
    """A step's circuit breaker is open: it crashed too many times.

    The build engine raises this *instead of running the builder*, so a
    deterministically-crashing step fast-fails rather than burning a
    full retry/backoff ladder on every compile; the -O1 flow catches the
    open breaker upstream and degrades the operator to the -O0 softcore.
    """

    def __init__(self, message: str, *, step: str = "", failures: int = 0):
        super().__init__(message)
        self.step = step
        self.failures = failures


class FaultInjectionError(PLDError):
    """A fault-injection plan deliberately failed an operation.

    Raised at the injection site (a compile job, a bitstream load, a DMA
    transfer); recovery layers catch it and retry or degrade.  Carries
    the fault's domain/kind/target so recovery code and reports can tell
    injected faults from genuine bugs.
    """

    def __init__(self, message: str, *, domain: str = "", kind: str = "",
                 target: str = ""):
        super().__init__(message)
        self.domain = domain
        self.kind = kind
        self.target = target


class RetryExhaustedError(PLDError):
    """A retried operation failed on every allowed attempt.

    Carries the attempt count and the last underlying error so callers
    can decide whether to degrade (e.g. remap an operator to the -O0
    softcore) or surface the failure.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: Exception = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class LinkTimeoutError(NoCError):
    """A linked stream could not be delivered within the retry budget.

    Raised by the leaf retransmission layer when a packet stays unacked
    past ``max_retransmissions`` attempts; carries the stream endpoint
    so the diagnostic names the broken link.
    """

    def __init__(self, message: str, *, leaf: int = -1, port: int = -1,
                 seq: int = -1, attempts: int = 0):
        super().__init__(message)
        self.leaf = leaf
        self.port = port
        self.seq = seq
        self.attempts = attempts
