"""PLD reproduction: fast FPGA compilation via separate compilation.

A full-system Python reproduction of *PLD: Fast FPGA Compilation to
Make Reconfigurable Acceleration Compatible with Modern Incremental
Refinement Software Development* (Xiao et al., ASPLOS 2022).

The public surface mirrors the paper's layering:

* :mod:`repro.hlstypes` — ``ap_int``/``ap_fixed`` value types;
* :mod:`repro.dataflow` — streaming dataflow graphs and simulators;
* :mod:`repro.hls` — the operator IR and HLS pass pipeline;
* :mod:`repro.fabric` — device, pages, shells, bitstreams;
* :mod:`repro.pnr` — packing, placement, routing, compile-time model;
* :mod:`repro.noc` — the deflection-routed BFT linking network;
* :mod:`repro.softcore` — RV32IM softcore and the -O0 compiler;
* :mod:`repro.platform` — Alveo card, DMA, host runtime;
* :mod:`repro.core` — the PLD toolflow (-O0/-O1/-O3 + Vitis baseline);
* :mod:`repro.rosetta` — the six benchmark applications;
* :mod:`repro.faults` — deterministic fault injection and the
  resilience machinery (retry, degradation, retransmission).

Quick start::

    from repro.core import O1Flow
    from repro.rosetta import get_app

    app = get_app("optical-flow")
    build = O1Flow().compile(app.project)
    print(build.compile_times.total, "modeled seconds")
    print(build.execute(app.project.sample_inputs))
"""

from repro.errors import (
    FaultInjectionError,
    LinkTimeoutError,
    PLDError,
    RetryExhaustedError,
)
from repro.faults import FaultEvent, FaultPlan

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "PLDError",
    "FaultInjectionError",
    "RetryExhaustedError",
    "LinkTimeoutError",
    "FaultPlan",
    "FaultEvent",
]
