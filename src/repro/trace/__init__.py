"""Unified tracing/observability for the toolflow (``repro.trace``).

One :class:`Tracer` threads through the whole edit-compile-run loop —
build steps, cluster jobs, flow phases, worker processes, incremental
sessions, the NoC watchdog, card configuration and the bench harness —
and exports the result as Chrome trace-event JSON (``pld ... --trace
FILE``, loadable in ``chrome://tracing`` / Perfetto) or a compact text
tree (``pld trace FILE``).  See :mod:`repro.trace.tracer` for the span
model and :mod:`repro.trace.export` for the formats.
"""

from repro.trace.tracer import (
    MODELED,
    NULL_TRACER,
    TraceEvent,
    Tracer,
    WALL,
)
from repro.trace.export import (
    chrome_trace,
    format_trace_tree,
    load_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "MODELED",
    "NULL_TRACER",
    "TraceEvent",
    "Tracer",
    "WALL",
    "chrome_trace",
    "format_trace_tree",
    "load_chrome_trace",
    "write_chrome_trace",
]
