"""Trace exports: Chrome trace-event JSON and the compact text tree.

The JSON follows the Trace Event Format that ``chrome://tracing`` and
Perfetto load: complete spans are ``"ph": "X"`` events with ``ts`` and
``dur`` in microseconds, instants are ``"ph": "i"`` and counters
``"ph": "C"``.  The two clocks map to two "processes" (wall = pid 1,
modeled = pid 2) and every lane to one named "thread" of its clock's
process, so cluster nodes, build workers and the host/card each get
their own horizontal track in the viewer.

:func:`format_trace_tree` renders the same data as an indented text
tree (nesting recovered from span containment per lane), which is what
``pld trace FILE`` prints.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.trace.tracer import MODELED, WALL, TraceEvent

#: Chrome "process" ids for the two clocks.
_CLOCK_PIDS = {WALL: 1, MODELED: 2}
_CLOCK_LABELS = {WALL: "wall clock", MODELED: "modeled clock"}

#: seconds -> Chrome microseconds
_US = 1e6


def chrome_trace(events: List[TraceEvent]) -> Dict[str, object]:
    """Convert recorded events into a Chrome trace-event dict."""
    out: List[Dict[str, object]] = []
    tids: Dict[tuple, int] = {}

    for pid, label in sorted((pid, _CLOCK_LABELS[clock])
                             for clock, pid in _CLOCK_PIDS.items()):
        out.append({"ph": "M", "pid": pid, "tid": 0,
                    "name": "process_name", "args": {"name": label}})

    def tid_of(clock: str, lane: str) -> int:
        key = (clock, lane)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == clock]) + 1
            out.append({"ph": "M", "pid": _CLOCK_PIDS[clock],
                        "tid": tids[key], "name": "thread_name",
                        "args": {"name": lane}})
        return tids[key]

    for ev in events:
        pid = _CLOCK_PIDS.get(ev.clock)
        if pid is None:
            continue
        tid = tid_of(ev.clock, ev.lane)
        base = {"name": ev.name, "cat": ev.category or "default",
                "pid": pid, "tid": tid,
                "ts": round(ev.start * _US, 3)}
        if ev.kind == "span":
            base["ph"] = "X"
            base["dur"] = round(max(ev.duration, 0.0) * _US, 3)
            if ev.attrs:
                base["args"] = _jsonable(ev.attrs)
        elif ev.kind == "instant":
            base["ph"] = "i"
            base["s"] = "t"
            if ev.attrs:
                base["args"] = _jsonable(ev.attrs)
        elif ev.kind == "counter":
            base["ph"] = "C"
            base["args"] = {ev.name: ev.attrs.get("value", 0)}
        else:
            continue
        out.append(base)

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _jsonable(attrs: Dict[str, object]) -> Dict[str, object]:
    safe: Dict[str, object] = {}
    for key, value in attrs.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[key] = value
        else:
            safe[key] = repr(value)
    return safe


def write_chrome_trace(path, events: List[TraceEvent]) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(events), fh, indent=1)
        fh.write("\n")


def load_chrome_trace(path) -> Dict[str, object]:
    """Read a trace file back (raises ``ValueError`` on malformed or
    non-trace JSON, with the path in the message)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path}: not a Chrome trace-event file "
                         "(no 'traceEvents' key)")
    return data


# --------------------------------------------------------------------------
# text tree
# --------------------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_args(args: Dict[str, object]) -> str:
    if not args:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
    return f"  [{body}]"


def format_trace_tree(trace: Dict[str, object]) -> str:
    """Render a Chrome trace-event dict as an indented text tree.

    Spans nest by containment within one (process, thread) lane; the
    per-lane trees are printed clock by clock, lane by lane, with
    instants and counter samples interleaved at their timestamps.
    """
    events = trace.get("traceEvents", [])
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")

    process_names: Dict[int, str] = {}
    thread_names: Dict[tuple, str] = {}
    by_lane: Dict[tuple, List[dict]] = {}
    n_spans = n_points = 0

    for ev in events:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        pid, tid = ev.get("pid", 0), ev.get("tid", 0)
        if ph == "M":
            if ev.get("name") == "process_name":
                process_names[pid] = ev.get("args", {}).get("name", "")
            elif ev.get("name") == "thread_name":
                thread_names[(pid, tid)] = \
                    ev.get("args", {}).get("name", "")
            continue
        if ph not in ("X", "i", "C"):
            continue
        by_lane.setdefault((pid, tid), []).append(ev)
        if ph == "X":
            n_spans += 1
        else:
            n_points += 1

    lines: List[str] = [
        f"trace: {len(by_lane)} lane(s), {n_spans} span(s), "
        f"{n_points} event(s)"]

    for (pid, tid) in sorted(by_lane):
        clock = process_names.get(pid, f"pid{pid}")
        lane = thread_names.get((pid, tid), f"tid{tid}")
        lines.append(f"[{clock}] {lane}")
        lane_events = sorted(
            by_lane[(pid, tid)],
            key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0)))
        stack: List[float] = []      # open spans' end timestamps
        for ev in lane_events:
            ts = float(ev.get("ts", 0.0))
            # Pop finished ancestors (small tolerance for float noise).
            while stack and ts >= stack[-1] - 1e-6:
                stack.pop()
            indent = "  " * (len(stack) + 1)
            name = ev.get("name", "?")
            args = ev.get("args", {}) or {}
            if ev.get("ph") == "X":
                dur = float(ev.get("dur", 0.0))
                lines.append(
                    f"{indent}{_fmt_seconds(ts / _US):>12s}  "
                    f"+{_fmt_seconds(dur / _US):<12s} {name}"
                    f"{_fmt_args(args)}")
                stack.append(ts + dur)
            elif ev.get("ph") == "i":
                lines.append(
                    f"{indent}{_fmt_seconds(ts / _US):>12s}  "
                    f"@ {name}{_fmt_args(args)}")
            else:                    # counter
                body = ", ".join(f"{k}={v}"
                                 for k, v in sorted(args.items()))
                lines.append(
                    f"{indent}{_fmt_seconds(ts / _US):>12s}  "
                    f"# {body or name}")
    return "\n".join(lines)
