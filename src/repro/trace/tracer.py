"""Span-based structured tracing for the toolflow.

A :class:`Tracer` records what the toolflow did as nested *spans*
(name, category, start, duration, attributes) plus point-in-time
*instant* events and sampled *counter* values.  Spans live on one of
two clocks:

* the **wall** clock — real ``time.perf_counter()`` seconds this
  process actually spent (build steps, worker waits, bench suites);
* the **modeled** clock — the Vivado-scale seconds the compile-time
  model charges (cluster jobs, hls/syn/pnr/bit phases, configuration
  and DMA timings), which is what Tab. 2 reports.

Every event carries a *lane* — "one thread" in the Chrome trace-event
rendering — so cluster jobs appear on their node's lane, parallel build
steps on their worker's lane and host activity on the card's lane.
Successive toolflow invocations share one modeled timeline: call sites
place their spans at :meth:`Tracer.modeled_time` and push the cursor
forward with :meth:`Tracer.advance_modeled`, so a cold compile, an
edit recompile and the reload that follows line up end to end.

The disabled tracer (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) is a strict no-op: every method returns
immediately and :meth:`span` hands back one reusable null context
manager, so instrumented call sites stay unconditional without
costing the hot paths anything measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Clock names (the two Chrome "processes" of an exported trace).
WALL = "wall"
MODELED = "modeled"


@dataclass
class TraceEvent:
    """One recorded event (span, instant or counter sample)."""

    kind: str                    # "span" | "instant" | "counter"
    name: str
    category: str
    clock: str                   # WALL | MODELED
    lane: str
    start: float                 # seconds on its clock
    duration: float = 0.0        # spans only
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _NullSpan:
    """The reusable context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """A live wall-clock span; records itself on exit."""

    __slots__ = ("_tracer", "_event", "_t0")

    def __init__(self, tracer: "Tracer", event: TraceEvent):
        self._tracer = tracer
        self._event = event
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        self._event.start = self._t0 - self._tracer._epoch
        return self

    def __exit__(self, *exc) -> bool:
        self._event.duration = time.perf_counter() - self._t0
        self._tracer.events.append(self._event)
        return False

    def set(self, **attrs) -> "_Span":
        """Attach attributes to the span (visible in both exports)."""
        self._event.attrs.update(attrs)
        return self


class Tracer:
    """Collects trace events across one toolflow run.

    Args:
        enabled: ``False`` makes every method a cheap no-op, so the
            instrumentation can stay unconditional at the call sites.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._epoch = time.perf_counter()
        self._modeled_offset = 0.0

    # -- wall clock ---------------------------------------------------------

    def span(self, name: str, category: str = "", lane: str = "main",
             **attrs):
        """Context manager timing a wall-clock span."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, TraceEvent("span", name, category, WALL,
                                      lane, 0.0, 0.0, dict(attrs)))

    def now(self) -> float:
        """Wall seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    def wall_span(self, name: str, start: float, duration: float,
                  category: str = "", lane: str = "main", **attrs) -> None:
        """Record a wall span whose interval was measured externally
        (``start`` in :meth:`now` coordinates)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent("span", name, category, WALL,
                                      lane, start, duration, dict(attrs)))

    # -- modeled clock ------------------------------------------------------

    def modeled_time(self) -> float:
        """Current cursor of the shared modeled timeline (seconds)."""
        return self._modeled_offset

    def advance_modeled(self, end: float) -> None:
        """Push the modeled cursor forward to ``end`` (never back)."""
        if end > self._modeled_offset:
            self._modeled_offset = end

    def modeled_span(self, name: str, start: float, duration: float,
                     category: str = "", lane: str = "main",
                     **attrs) -> None:
        """Record a span on the modeled clock (absolute ``start``)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent("span", name, category, MODELED,
                                      lane, start, duration, dict(attrs)))

    def modeled_phases(self, phases: List[Tuple[str, float]],
                       base: Optional[float] = None,
                       category: str = "phase",
                       lane: str = "phases", **attrs) -> float:
        """Lay consecutive phase spans on the modeled clock.

        ``phases`` is ``[(name, seconds), ...]``; zero-length phases
        are skipped.  Returns the modeled end time of the last phase.
        """
        if not self.enabled:
            return base or 0.0
        cursor = self.modeled_time() if base is None else base
        for name, seconds in phases:
            if seconds <= 0:
                continue
            self.modeled_span(name, cursor, seconds, category=category,
                              lane=lane, **attrs)
            cursor += seconds
        return cursor

    # -- point events -------------------------------------------------------

    def instant(self, name: str, category: str = "", lane: str = "main",
                clock: str = WALL, ts: Optional[float] = None,
                **attrs) -> None:
        """A zero-duration marker (Chrome 'i' event)."""
        if not self.enabled:
            return
        if ts is None:
            ts = self.now() if clock == WALL else self.modeled_time()
        self.events.append(TraceEvent("instant", name, category, clock,
                                      lane, ts, 0.0, dict(attrs)))

    def shard_health(self, shard: str, state: str, **attrs) -> None:
        """A remote-store shard health transition, in canonical shape.

        The sharded store client reports every failure-domain event —
        ``breaker-open`` (quarantine entry), ``degraded`` (first
        fallback-served request), ``healed`` (half-open probe
        succeeded), ``reconciled`` (write-behind queue drained) — as
        ``shard:<state>:<address>`` instants on the ``store`` lane, so
        one Perfetto query (category ``store``) tells the whole
        availability story of a build.
        """
        if not self.enabled:
            return
        self.instant(f"shard:{state}:{shard}", category="store",
                     lane="store", shard=shard, state=state, **attrs)

    def counter(self, name: str, value, category: str = "",
                lane: str = "main", clock: str = WALL,
                ts: Optional[float] = None) -> None:
        """A sampled counter value (Chrome 'C' event)."""
        if not self.enabled:
            return
        if ts is None:
            ts = self.now() if clock == WALL else self.modeled_time()
        self.events.append(TraceEvent("counter", name, category, clock,
                                      lane, ts, 0.0, {"value": value}))

    # -- export -------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event dict (see export.py)."""
        from repro.trace.export import chrome_trace
        return chrome_trace(self.events)

    def write_chrome_trace(self, path) -> None:
        """Write ``chrome://tracing`` / Perfetto-compatible JSON."""
        from repro.trace.export import write_chrome_trace
        write_chrome_trace(path, self.events)

    def format_tree(self) -> str:
        """The compact text-tree rendering of this trace."""
        from repro.trace.export import format_trace_tree
        return format_trace_tree(self.chrome_trace())

    def __len__(self) -> int:
        return len(self.events)


#: The shared disabled tracer instrumented code defaults to.
NULL_TRACER = Tracer(enabled=False)
